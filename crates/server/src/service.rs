//! The session layer: a [`Service`] wraps a shared
//! [`Engine`] and turns parsed [`Command`]s into paginated responses
//! over live ranked streams.
//!
//! * **Cursors** — a `SELECT` opens a [`RankedStream`] over the
//!   engine's (cached) prepared state, serves the first page, and
//!   registers a cursor for `NEXT` pulls.
//! * **Shared cursor deadlines** — every open cursor's expiry deadline
//!   (and its admission slot) lives in a **service-level deadline
//!   map**, not in the owning session. Streams stay session-owned
//!   (they are `Send` but not `Sync`), but the *slot* can be reaped
//!   from anywhere: admission consults the map when the service is
//!   full, the event-loop transport sweeps it on a timer tick, and a
//!   session prunes its own orphaned streams at the top of each
//!   command. A client that goes silent while holding cursors
//!   therefore cannot pin admission slots past the TTL — its next
//!   `NEXT`/`CLOSE` reports a typed [`ServeError::CursorExpired`].
//! * **Admission control** — a service-wide semaphore bounds how many
//!   streams may be open at once across all sessions; beyond it,
//!   `SELECT` first reaps expired deadlines and then, still full,
//!   fails with a typed [`ServeError::AdmissionRejected`] instead of
//!   letting per-stream heap state grow without bound.
//! * **Metrics** — per-query time-to-first-answer and per-page
//!   latency as both min/mean/max and fixed-bucket power-of-two
//!   **histograms** (p50/p95/p99 on read), answers served, cursor
//!   lifecycle counts, and the engine's plan-cache counters, all
//!   surfaced through the `STATS` command.
//!
//! ## Threading model
//!
//! [`Service`] is `Clone + Send + Sync`: clones are handles onto one
//! shared engine, admission semaphore, deadline map, and metrics
//! block. A [`Session`] is `Send` but single-owner — exactly one
//! client (connection or [`LocalClient`](crate::LocalClient)) drives
//! it, so cursor pulls never contend. Everything cross-session is
//! either lock-free (metrics, admission) or a short critical section
//! (the deadline map, the plan cache).

use crate::ast::Command;
use crate::parser::{parse, ParseError};
use anyk_engine::{
    CacheStats, Engine, EngineError, IndexUse, PrepareReport, RankSpec, RankedAnswer, RankedStream,
    ShardFanIn, ShardedEngine, WriteStats,
};
use anyk_obs::{rank_id, route_id, Histogram, ObsRegistry, QueryTrace, Stage, RANKS, ROUTES};
use anyk_query::cq::ConjunctiveQuery;
use anyk_storage::IndexStats;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Configuration for a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Maximum number of concurrently open cursors (streams) across
    /// all sessions — the admission-control bound.
    pub max_open_cursors: usize,
    /// Idle time after which a cursor expires. Deadlines live in a
    /// **service-level shared map**, so expiry frees the admission
    /// slot even while the owning session stays silent: admission
    /// sweeps the map when the service is full, the event-loop
    /// transport sweeps it on a timer, and the owning session drops
    /// the orphaned stream (and reports
    /// [`ServeError::CursorExpired`]) on its next command.
    pub cursor_ttl: Duration,
    /// Page size when a `SELECT` carries no `LIMIT`.
    pub default_page: usize,
    /// Maximum concurrently established connections across all
    /// transports — accept-time load shedding. A connection admitted
    /// past this bound gets one typed `ERR admission: connections`
    /// reply and is closed before it ever reaches a worker, so a
    /// connection flood degrades into cheap rejects instead of
    /// unbounded per-connection state.
    pub max_connections: usize,
    /// Event-loop worker threads. `None` (the default) sizes the pool
    /// from [`std::thread::available_parallelism`] with a floor of 2
    /// and **no upper clamp** — big machines get big pools. `Some(n)`
    /// pins the pool; `Some(0)` is rejected at bind time with a typed
    /// [`BindError`](crate::BindError). Overridden by the
    /// `ANYK_SERVE_WORKERS` environment variable and by an explicit
    /// [`TransportConfig::workers`](crate::TransportConfig::workers),
    /// in that order of increasing precedence.
    pub workers: Option<usize>,
    /// A completed query whose end-to-end wall time reaches this
    /// threshold has its trace copied into the bounded slow-query log
    /// (readable via `TRACE SLOW`). `Duration::ZERO` disables the
    /// log; the trace ring records every query regardless.
    pub slow_query: Duration,
    /// Maximum rows one `INSERT`/`LOAD` may append. A larger batch is
    /// refused with a typed [`ServeError::BatchTooLarge`] before it
    /// touches the engine, bounding per-command memory and the length
    /// of the append critical section.
    pub max_batch_rows: usize,
}

impl Default for ServiceConfig {
    /// 64 concurrent streams, 60 s cursor TTL, 10-answer pages,
    /// 1024 connections, auto-sized worker pool, 250 ms slow-query
    /// threshold, 4096-row write batches.
    fn default() -> Self {
        ServiceConfig {
            max_open_cursors: 64,
            cursor_ttl: Duration::from_secs(60),
            default_page: 10,
            max_connections: 1024,
            workers: None,
            slow_query: Duration::from_millis(250),
            max_batch_rows: 4096,
        }
    }
}

/// Why a command could not be served. Parse and engine failures are
/// wrapped; the session-layer failures (cursor lifecycle, admission)
/// are typed here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The command text did not parse.
    Parse(ParseError),
    /// The engine rejected the query (unknown relation, arity, ...).
    Engine(EngineError),
    /// `NEXT`/`CLOSE` on a cursor id this session never opened (or
    /// already closed/drained).
    UnknownCursor {
        /// The offending id.
        cursor: u64,
    },
    /// `NEXT` on a cursor that idled past the TTL and was reaped.
    CursorExpired {
        /// The expired id.
        cursor: u64,
    },
    /// `SELECT` rejected because the service is at its concurrent-
    /// stream bound.
    AdmissionRejected {
        /// Streams currently open.
        open: usize,
        /// The configured bound.
        max: usize,
    },
    /// `INSERT`/`LOAD` refused: the batch exceeds
    /// [`ServiceConfig::max_batch_rows`].
    BatchTooLarge {
        /// Rows the batch carried.
        rows: usize,
        /// The configured bound.
        max: usize,
    },
    /// An `INSERT` whose rows disagree on cell count — every row must
    /// match the first (`arity + 1` cells: attributes then weight).
    RaggedInsert {
        /// Zero-based index of the offending row.
        row: usize,
        /// Cells that row carried.
        cells: usize,
        /// Cells the first row carried.
        expected: usize,
    },
    /// The `LOAD` command's inline CSV block was rejected by the CSV
    /// reader (bad header, ragged row, non-numeric cell, NaN weight).
    CsvRejected {
        /// The CSV reader's message.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Parse(e) => write!(f, "parse: {e}"),
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::UnknownCursor { cursor } => write!(f, "unknown cursor {cursor}"),
            ServeError::CursorExpired { cursor } => write!(f, "cursor {cursor} expired"),
            ServeError::AdmissionRejected { open, max } => {
                write!(f, "admission rejected: {open} of {max} streams open")
            }
            ServeError::BatchTooLarge { rows, max } => {
                write!(f, "batch of {rows} rows exceeds the {max}-row bound")
            }
            ServeError::RaggedInsert {
                row,
                cells,
                expected,
            } => write!(
                f,
                "insert row {row} has {cells} cells, expected {expected} like the first row"
            ),
            ServeError::CsvRejected { message } => write!(f, "csv rejected: {message}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Parse(e) => Some(e),
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for ServeError {
    fn from(e: ParseError) -> Self {
        ServeError::Parse(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// What a successfully served command returns.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A page of ranked answers (`SELECT` / `NEXT`).
    Page(Page),
    /// The rendered plan (`EXPLAIN`).
    Explained(String),
    /// Service metrics (`STATS`).
    Stats(Box<ServiceStats>),
    /// Per-stage execution report (`EXPLAIN ANALYZE SELECT …`): the
    /// query ran to its page limit and this is where the time went.
    Analyzed(Box<AnalyzeReport>),
    /// Query traces (`TRACE <n>` from the ring, `TRACE SLOW` from the
    /// slow-query log), newest first.
    Traces {
        /// True when served from the slow-query log.
        slow: bool,
        /// The traces, newest first.
        traces: Vec<QueryTrace>,
    },
    /// Acknowledgement of `CLOSE`.
    Closed {
        /// The closed cursor id.
        cursor: u64,
    },
    /// Acknowledgement of `INSERT`/`LOAD`: rows appended, the target
    /// relation's live delta-batch count afterwards, and whether the
    /// append tripped threshold compaction.
    Appended {
        /// Rows appended.
        rows: u64,
        /// Delta batches the relation holds after this append (0 right
        /// after a compaction folded them into the base).
        deltas: usize,
        /// True when this append triggered a compaction.
        compacted: bool,
    },
}

/// The `EXPLAIN ANALYZE` report: the query was executed to its page
/// limit and every stage of its life timed on the service clock. The
/// stages are contiguous spans of one wall interval, so
/// `stage_us.iter().sum()` equals `wall_us` up to the (sub-µs) seams
/// between clock reads — E19 pins the two within 10% end to end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeReport {
    /// Planner route label (`acyclic` / `triangle` / `four-cycle` /
    /// `decomposed`).
    pub route: String,
    /// Ranking label (`sum` / `max` / `min` / `prod` / `lex`).
    pub rank: String,
    /// Plan-cache provenance: `true` when every involved plan cache
    /// (one per shard) served its prepared entry.
    pub cache_hit: bool,
    /// Index provenance label (`n/a` / `cached` / `built`).
    pub index: &'static str,
    /// Per-stage wall times, µs, in [`Stage::ALL`] order.
    pub stage_us: [u64; anyk_obs::STAGES],
    /// End-to-end wall time, µs (parse through report assembly).
    pub wall_us: u64,
    /// Answers actually produced (the *actual* cardinality).
    pub rows: u64,
    /// Answers requested — the page limit the router was asked to
    /// fill (the *routed* cardinality).
    pub limit: u64,
    /// Shards that served the query (1 on a single-engine backend).
    pub shards: usize,
    /// Rows each shard fed the tournament merge (empty unsharded).
    pub shard_rows: Vec<u64>,
    /// Tournament-tree depth of the shard merge (0 unsharded).
    pub merge_depth: u32,
}

/// One page of answers.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// The cursor to `NEXT` on for more answers — `None` when the
    /// stream is drained (drained cursors close themselves).
    pub cursor: Option<u64>,
    /// The answers, in ranking order, continuing where the previous
    /// page stopped.
    pub answers: Vec<RankedAnswer>,
    /// True when the stream is exhausted: no further page exists.
    /// Exact — the session pulls one answer of lookahead, so a result
    /// set that ends exactly at a page boundary still reports `done`
    /// (and holds no cursor).
    pub done: bool,
}

/// A snapshot of the service-level metrics (the `STATS` command).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceStats {
    /// `SELECT`s served (successful plans, including empty results).
    pub queries: u64,
    /// Total answers emitted across all pages.
    pub answers_served: u64,
    /// Pages served (`SELECT` first pages + `NEXT` pulls).
    pub pages_served: u64,
    /// Cursors ever registered.
    pub cursors_opened: u64,
    /// Cursors closed by `CLOSE`, by draining, or by session drop.
    pub cursors_closed: u64,
    /// Cursors reaped by the TTL.
    pub cursors_expired: u64,
    /// `SELECT`s refused by admission control.
    pub admission_rejected: u64,
    /// Streams open right now (the admission gauge).
    pub open_cursors: usize,
    /// Minimum observed time-to-first-answer, in microseconds.
    pub ttf_min_us: u64,
    /// Mean observed time-to-first-answer, in microseconds.
    pub ttf_mean_us: u64,
    /// Maximum observed time-to-first-answer, in microseconds.
    pub ttf_max_us: u64,
    /// Median time-to-first-answer from the fixed-bucket histogram,
    /// estimated by linear interpolation within the containing
    /// power-of-two bucket (the top bucket still reports its upper
    /// bound), in microseconds. 0 until a first answer is served.
    pub ttf_p50_us: u64,
    /// 95th-percentile time-to-first-answer (interpolated within its
    /// bucket), µs.
    pub ttf_p95_us: u64,
    /// 99th-percentile time-to-first-answer (interpolated within its
    /// bucket), µs.
    pub ttf_p99_us: u64,
    /// Median per-page serve latency (`SELECT` first pages and `NEXT`
    /// pulls alike; interpolated within its bucket), µs.
    pub page_p50_us: u64,
    /// 95th-percentile per-page serve latency (interpolated within its
    /// bucket), µs.
    pub page_p95_us: u64,
    /// 99th-percentile per-page serve latency (interpolated within its
    /// bucket), µs.
    pub page_p99_us: u64,
    /// Connections refused by accept-time load shedding.
    pub connections_rejected: u64,
    /// Connections established right now (the connection gauge).
    pub open_connections: usize,
    /// The engine's plan-cache counters (hits/misses/evictions/...) —
    /// summed across all shards on a sharded backend.
    pub cache: CacheStats,
    /// The index catalog's counters (hits/misses/builds/...) — summed
    /// across all shards on a sharded backend (each shard owns its own
    /// index catalog).
    pub index: IndexStats,
    /// How many engine shards serve this service (1 for a
    /// single-engine backend).
    pub shards: usize,
    /// Median engine prepare wall time (cache hits and misses alike),
    /// merged **bucket-wise** across every shard's registry so the
    /// percentile is truthful at any shard count, µs.
    pub prepare_p50_us: u64,
    /// 95th-percentile engine prepare wall time (bucket-wise shard
    /// merge), µs.
    pub prepare_p95_us: u64,
    /// 99th-percentile engine prepare wall time (bucket-wise shard
    /// merge), µs.
    pub prepare_p99_us: u64,
    /// Median sampled per-answer enumeration delay (one sample per
    /// [`SAMPLE_EVERY`](anyk_engine) pulls; bucket-wise shard merge), µs.
    pub delay_p50_us: u64,
    /// 99th-percentile sampled per-answer enumeration delay, µs.
    pub delay_p99_us: u64,
    /// Completed-query traces published into the trace ring.
    pub traces_published: u64,
    /// Trace publishes dropped on slot contention (telemetry never
    /// stalls a query).
    pub traces_dropped: u64,
    /// Entries currently held in the bounded slow-query log.
    pub slow_queries: usize,
    /// Append batches accepted (`INSERT`/`LOAD` and direct engine
    /// appends alike; one per logical batch on a sharded backend).
    pub appends: u64,
    /// Rows appended across all batches.
    pub appended_rows: u64,
    /// Threshold compactions folded delta batches into fresh bases.
    pub compactions: u64,
    /// Prepared plans dropped by relation-scoped append invalidation
    /// (summed across shards on a sharded backend).
    pub append_invalidations: u64,
    /// Per route × ranking breakdown, indexed `[route][rank]` in
    /// [`ROUTES`] × [`RANKS`] order.
    pub routes: [[RouteRankStats; RANKS.len()]; ROUTES.len()],
}

/// One `STATS` breakdown cell: traffic and time-to-first-answer for a
/// single planner route × ranking combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteRankStats {
    /// Queries served on this route × ranking.
    pub queries: u64,
    /// Answers emitted on this route × ranking.
    pub answers: u64,
    /// Median time-to-first-answer, µs (0 until one is served).
    pub ttf_p50_us: u64,
    /// 99th-percentile time-to-first-answer, µs.
    pub ttf_p99_us: u64,
}

/// Cumulative counters behind [`ServiceStats`] — lock-free, shared by
/// every session and every clone of the service.
#[derive(Debug, Default)]
struct Metrics {
    queries: AtomicU64,
    answers_served: AtomicU64,
    pages_served: AtomicU64,
    cursors_opened: AtomicU64,
    cursors_closed: AtomicU64,
    cursors_expired: AtomicU64,
    admission_rejected: AtomicU64,
    connections_rejected: AtomicU64,
    ttf_count: AtomicU64,
    ttf_sum_us: AtomicU64,
    ttf_min_us: AtomicU64,
    ttf_max_us: AtomicU64,
    ttf_hist: Histogram,
    page_hist: Histogram,
}

impl Metrics {
    fn record_ttf(&self, us: u64) {
        // Sub-microsecond first pages round up to 1 µs on both bounds
        // (an asymmetric clamp could report min > max).
        let us = us.max(1);
        self.ttf_count.fetch_add(1, Ordering::Relaxed);
        self.ttf_sum_us.fetch_add(us, Ordering::Relaxed);
        self.ttf_min_us.fetch_min(us, Ordering::Relaxed);
        self.ttf_max_us.fetch_max(us, Ordering::Relaxed);
        self.ttf_hist.record(us);
    }

    fn record_page(&self, us: u64) {
        self.page_hist.record(us.max(1));
    }
}

/// A `Duration` as saturating µs (deadline and threshold math runs on
/// the service clock's µs timeline).
fn duration_us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// The admission-control semaphore: a counter bounded by
/// `max_open_cursors`, acquired per open stream and released by the
/// guard's `Drop` (so a dropped session can never leak slots).
#[derive(Debug)]
struct Admission {
    open: AtomicUsize,
    max: usize,
}

impl Admission {
    /// Try to take a slot; `None` when the service is at its bound.
    fn try_acquire(self: &Arc<Self>) -> Option<AdmissionSlot> {
        let mut cur = self.open.load(Ordering::Relaxed);
        loop {
            if cur >= self.max {
                return None;
            }
            match self
                .open
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    return Some(AdmissionSlot {
                        admission: Arc::clone(self),
                    })
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

#[derive(Debug)]
struct AdmissionSlot {
    admission: Arc<Admission>,
}

impl Drop for AdmissionSlot {
    fn drop(&mut self) {
        self.admission.open.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The connection-level admission gauge: a counter bounded by
/// [`ServiceConfig::max_connections`], acquired at accept time and
/// released by the slot's `Drop` — a connection that dies on any path
/// (clean close, I/O error, panic unwind) always returns its slot.
#[derive(Debug)]
struct ConnectionGauge {
    open: AtomicUsize,
    max: usize,
}

impl ConnectionGauge {
    fn try_acquire(self: &Arc<Self>) -> Option<ConnectionSlot> {
        let mut cur = self.open.load(Ordering::Relaxed);
        loop {
            if cur >= self.max {
                return None;
            }
            match self
                .open
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    return Some(ConnectionSlot {
                        gauge: Arc::clone(self),
                    })
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

/// An admitted connection's slot in the gauge; dropping it is the
/// release. Held by the transport for the connection's whole lifetime.
#[derive(Debug)]
pub(crate) struct ConnectionSlot {
    gauge: Arc<ConnectionGauge>,
}

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.gauge.open.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A cursor's service-wide identity: (session id, cursor id).
type CursorKey = (u64, u64);

/// One open cursor's shared lifecycle state: its expiry deadline and
/// its admission slot. The *stream* stays in the owning session (it is
/// not `Sync`); everything another thread may need to act on lives
/// here.
#[derive(Debug)]
struct DeadlineEntry {
    /// Expiry instant, µs on the service clock (the obs registry's
    /// injected clock, so TTL tests can drive time deterministically).
    deadline_us: u64,
    _slot: AdmissionSlot,
}

/// How many mutex stripes [`SharedDeadlines`] spreads its entries
/// over. Every session's per-command sweep and every transport tick
/// takes these locks; 16 stripes keeps a hot multi-session service
/// from serializing on one map mutex while staying cheap to scan in
/// the full reap.
const DEADLINE_SHARDS: usize = 16;

/// The service-level deadline map: every open cursor across every
/// session, keyed by [`CursorKey`] and striped over
/// [`DEADLINE_SHARDS`] independent mutexes (shard chosen by key hash),
/// so concurrent sessions touching disjoint cursors rarely contend.
/// Removing an entry *is* releasing the admission slot (the slot guard
/// drops with it) — which is what lets admission and the transport
/// reap a silent session's cursors without touching its streams.
#[derive(Debug)]
struct SharedDeadlines {
    shards: Vec<Mutex<HashMap<CursorKey, DeadlineEntry>>>,
}

impl Default for SharedDeadlines {
    fn default() -> Self {
        SharedDeadlines {
            shards: (0..DEADLINE_SHARDS).map(|_| Mutex::default()).collect(),
        }
    }
}

impl SharedDeadlines {
    /// The stripe holding `key`: Fibonacci-hash both halves so
    /// sequentially allocated session/cursor ids spread over shards
    /// instead of clustering in one.
    fn shard(&self, key: CursorKey) -> &Mutex<HashMap<CursorKey, DeadlineEntry>> {
        let h = (key.0.rotate_left(32) ^ key.1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize % DEADLINE_SHARDS]
    }

    fn insert(&self, key: CursorKey, deadline_us: u64, slot: AdmissionSlot) {
        let shard = self.shard(key);
        shard.lock().unwrap_or_else(PoisonError::into_inner).insert(
            key,
            DeadlineEntry {
                deadline_us,
                _slot: slot,
            },
        );
    }

    /// Extend `key`'s deadline; false when the entry is gone (the
    /// cursor was reaped — the caller must treat it as expired).
    fn touch(&self, key: CursorKey, deadline_us: u64) -> bool {
        let shard = self.shard(key);
        match shard
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_mut(&key)
        {
            Some(e) => {
                e.deadline_us = deadline_us;
                true
            }
            None => false,
        }
    }

    /// Remove `key`, releasing its slot; false when already reaped.
    fn remove(&self, key: CursorKey) -> bool {
        let shard = self.shard(key);
        shard
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&key)
            .is_some()
    }

    /// Drop every entry whose deadline has passed, releasing the
    /// slots. Locks one shard at a time — the sweep never holds more
    /// than one stripe, so it cannot deadlock against per-key callers.
    /// Returns how many were reaped.
    fn reap(&self, now_us: u64) -> usize {
        let mut reaped = 0usize;
        for shard in &self.shards {
            let mut map = shard.lock().unwrap_or_else(PoisonError::into_inner);
            let before = map.len();
            map.retain(|_, e| now_us <= e.deadline_us);
            reaped += before - map.len();
        }
        reaped
    }

    /// The session-scoped sweep: for each of `session`'s cursor `ids`,
    /// remove its entry if the deadline has passed. Returns the ids
    /// whose streams the session must now drop, plus how many this
    /// call expired — ids whose entries were already gone were reaped
    /// (and counted) elsewhere. O(own cursors), not O(all cursors):
    /// this runs at the top of every command, so it must not scan the
    /// whole service. Each id locks only its own stripe.
    fn reap_session(&self, session: u64, ids: &[u64], now_us: u64) -> (Vec<u64>, usize) {
        let mut dead = Vec::new();
        let mut expired = 0usize;
        for &c in ids {
            let key = (session, c);
            let shard = self.shard(key);
            let mut map = shard.lock().unwrap_or_else(PoisonError::into_inner);
            match map.get(&key) {
                None => dead.push(c),
                Some(e) if now_us > e.deadline_us => {
                    map.remove(&key);
                    expired += 1;
                    dead.push(c);
                }
                Some(_) => {}
            }
        }
        (dead, expired)
    }
}

/// The engine a [`Service`] serves from: one process-local [`Engine`],
/// or N hash-partitioned shards merged behind [`ShardedEngine`]. The
/// session layer — cursors, admission, deadlines, metrics — is
/// identical either way; only planning and stats sourcing dispatch.
#[derive(Clone)]
enum Backend {
    Single(Engine),
    Sharded(ShardedEngine),
}

impl Backend {
    /// Plan `cq` under `rank` into a ranked stream (through the plan
    /// cache on a single engine; through every shard's cache plus the
    /// tournament merge on a sharded one), with provenance: the
    /// prepare report (cache hit, prepare wall time) and — sharded —
    /// the live [`ShardFanIn`] handle behind the tournament merge.
    fn plan_report(
        &self,
        cq: ConjunctiveQuery,
        rank: RankSpec,
    ) -> Result<(RankedStream, PrepareReport, Option<Arc<ShardFanIn>>), EngineError> {
        match self {
            Backend::Single(engine) => {
                let (stream, report) = engine.query(cq).rank_by(rank).plan_report()?;
                Ok((stream, report, None))
            }
            Backend::Sharded(sharded) => {
                let (prepared, report) = sharded.prepare_report(&cq, rank)?;
                let (stream, fan_in) = prepared.stream_traced();
                let obs = sharded.obs();
                let stream = if obs.enabled() {
                    stream.sampled(Arc::clone(obs))
                } else {
                    stream
                };
                Ok((stream, report, Some(fan_in)))
            }
        }
    }

    /// Render the plan; a sharded backend appends its per-atom fan-out.
    fn explain(&self, cq: ConjunctiveQuery, rank: RankSpec) -> Result<String, EngineError> {
        match self {
            Backend::Single(engine) => Ok(engine.query(cq).rank_by(rank).explain()?.explain()),
            Backend::Sharded(sharded) => sharded.explain(&cq, rank),
        }
    }

    fn cache_stats(&self) -> CacheStats {
        match self {
            Backend::Single(engine) => engine.cache_stats(),
            Backend::Sharded(sharded) => sharded.cache_stats(),
        }
    }

    fn index_stats(&self) -> IndexStats {
        match self {
            Backend::Single(engine) => engine.index_stats(),
            Backend::Sharded(sharded) => sharded.index_stats(),
        }
    }

    fn shards(&self) -> usize {
        match self {
            Backend::Single(_) => 1,
            Backend::Sharded(sharded) => sharded.num_shards(),
        }
    }

    /// Append one batch to `name` (every shard's logical copy plus its
    /// hash fragment on a sharded backend). Returns the relation's
    /// delta-batch count afterwards and whether this append tripped
    /// threshold compaction.
    fn append(
        &self,
        name: &str,
        batch: anyk_storage::Relation,
    ) -> Result<(usize, bool), EngineError> {
        let before = self.write_stats().compactions;
        let catalog = match self {
            Backend::Single(engine) => {
                engine.append(name, batch)?;
                engine.catalog()
            }
            Backend::Sharded(sharded) => {
                sharded.append(name, batch)?;
                sharded.shard_engines()[0].catalog()
            }
        };
        let deltas = catalog.entry(name).map_or(0, |e| e.deltas().len());
        let compacted = self.write_stats().compactions > before;
        Ok((deltas, compacted))
    }

    fn write_stats(&self) -> WriteStats {
        match self {
            Backend::Single(engine) => engine.write_stats(),
            Backend::Sharded(sharded) => sharded.write_stats(),
        }
    }
}

/// The query service: a shared engine backend — single or sharded —
/// plus the service-wide admission bound and metrics.
/// `Clone + Send + Sync` — clones are handles to the same service;
/// spawn one [`Session`] per client.
#[derive(Clone)]
pub struct Service {
    backend: Backend,
    config: ServiceConfig,
    /// The backend engine's observability registry (shard 0's on a
    /// sharded backend): trace ring, slow-query log, route cells, and
    /// the injected clock every service timestamp reads.
    obs: Arc<ObsRegistry>,
    admission: Arc<Admission>,
    connections: Arc<ConnectionGauge>,
    deadlines: Arc<SharedDeadlines>,
    metrics: Arc<Metrics>,
    next_session: Arc<AtomicU64>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("config", &self.config)
            .field("open_cursors", &self.admission.open.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Service {
    /// A service over `engine` with the default
    /// [`ServiceConfig`].
    pub fn new(engine: Engine) -> Self {
        Service::with_config(engine, ServiceConfig::default())
    }

    /// A service with an explicit configuration.
    pub fn with_config(engine: Engine, config: ServiceConfig) -> Self {
        Service::from_backend(Backend::Single(engine), config)
    }

    /// A service over a [`ShardedEngine`] with the default
    /// [`ServiceConfig`]: sessions stream through the globally-ranked
    /// shard merge, `EXPLAIN` reports shard fan-out, and `STATS`
    /// aggregates per-shard cache and index counters.
    pub fn sharded(engine: ShardedEngine) -> Self {
        Service::sharded_with_config(engine, ServiceConfig::default())
    }

    /// [`Service::sharded`] with an explicit configuration.
    pub fn sharded_with_config(engine: ShardedEngine, config: ServiceConfig) -> Self {
        Service::from_backend(Backend::Sharded(engine), config)
    }

    fn from_backend(backend: Backend, config: ServiceConfig) -> Self {
        let obs = match &backend {
            Backend::Single(engine) => Arc::clone(engine.obs()),
            Backend::Sharded(sharded) => Arc::clone(sharded.obs()),
        };
        Service {
            backend,
            config,
            obs,
            admission: Arc::new(Admission {
                open: AtomicUsize::new(0),
                max: config.max_open_cursors,
            }),
            connections: Arc::new(ConnectionGauge {
                open: AtomicUsize::new(0),
                max: config.max_connections,
            }),
            deadlines: Arc::new(SharedDeadlines::default()),
            metrics: Arc::new(Metrics {
                ttf_min_us: AtomicU64::new(u64::MAX),
                ..Metrics::default()
            }),
            next_session: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The underlying single-process engine (catalog updates, cache
    /// configuration) — `None` when this service fronts a sharded
    /// backend; use [`Service::sharded_engine`] there.
    pub fn engine(&self) -> Option<&Engine> {
        match &self.backend {
            Backend::Single(engine) => Some(engine),
            Backend::Sharded(_) => None,
        }
    }

    /// The underlying sharded engine — `None` on a single-engine
    /// service.
    pub fn sharded_engine(&self) -> Option<&ShardedEngine> {
        match &self.backend {
            Backend::Single(_) => None,
            Backend::Sharded(sharded) => Some(sharded),
        }
    }

    /// How many engine shards serve this service (1 for a
    /// single-engine backend).
    pub fn shards(&self) -> usize {
        self.backend.shards()
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The observability registry this service records into: the trace
    /// ring behind `TRACE <n>`, the slow-query log behind `TRACE SLOW`,
    /// and the per-route × per-ranking cells behind `STATS`.
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        &self.obs
    }

    /// Current µs reading of the service clock (the registry's
    /// injected [`Clock`](anyk_obs::Clock) — deterministic in tests).
    pub(crate) fn now_us(&self) -> u64 {
        self.obs.now_us()
    }

    /// The cursor TTL in service-clock µs.
    fn ttl_us(&self) -> u64 {
        duration_us(self.config.cursor_ttl)
    }

    /// The slow-query threshold in µs (0 = the log is disabled).
    fn slow_threshold_us(&self) -> u64 {
        duration_us(self.config.slow_query)
    }

    /// Accept-time load shedding: try to admit one more connection.
    /// `Some(slot)` reserves a connection for as long as the slot
    /// lives (transports hold it alongside the connection state);
    /// `None` means the service is at [`ServiceConfig::max_connections`]
    /// — the transport sends one typed admission error and closes. The
    /// rejection is counted in [`ServiceStats::connections_rejected`].
    pub(crate) fn try_admit_connection(&self) -> Option<ConnectionSlot> {
        let slot = self.connections.try_acquire();
        if slot.is_none() {
            self.metrics
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
        }
        slot
    }

    /// How many connections are established right now.
    pub(crate) fn open_connections(&self) -> usize {
        self.connections.open.load(Ordering::Relaxed)
    }

    /// Open a session: the per-client unit owning its cursor registry.
    /// One session per connection (or per [`LocalClient`](crate::LocalClient)).
    pub fn session(&self) -> Session {
        Session {
            id: self.next_session.fetch_add(1, Ordering::Relaxed),
            service: self.clone(),
            cursors: HashMap::new(),
            expired: VecDeque::new(),
            next_cursor: 0,
            pending: None,
        }
    }

    /// Sweep the shared deadline map: drop every cursor entry whose
    /// TTL has passed, releasing its admission slot immediately — the
    /// owning session need not speak. Called by admission when the
    /// service is full, by the event-loop transport on its timer tick,
    /// and by every session at the top of each command; also public
    /// for external reaper threads. Returns how many cursors were
    /// reaped.
    pub fn reap_expired_cursors(&self) -> usize {
        let reaped = self.deadlines.reap(self.now_us());
        if reaped > 0 {
            self.metrics
                .cursors_expired
                .fetch_add(reaped as u64, Ordering::Relaxed);
        }
        reaped
    }

    /// Current metrics, including the engine's plan-cache counters
    /// and the per-route × per-ranking breakdown.
    pub fn stats(&self) -> ServiceStats {
        let m = &self.metrics;
        let count = m.ttf_count.load(Ordering::Relaxed);
        let min = m.ttf_min_us.load(Ordering::Relaxed);
        let (prepare, delay) = self.merged_engine_hists();
        let ring = self.obs.ring_stats();
        let writes = self.backend.write_stats();
        let mut routes = [[RouteRankStats::default(); RANKS.len()]; ROUTES.len()];
        for (r, row) in routes.iter_mut().enumerate() {
            for (k, out) in row.iter_mut().enumerate() {
                let cell = self.obs.cell(r as u64, k as u64);
                *out = RouteRankStats {
                    queries: cell.queries.load(Ordering::Relaxed),
                    answers: cell.answers.load(Ordering::Relaxed),
                    ttf_p50_us: cell.ttf.percentile(0.50),
                    ttf_p99_us: cell.ttf.percentile(0.99),
                };
            }
        }
        ServiceStats {
            queries: m.queries.load(Ordering::Relaxed),
            answers_served: m.answers_served.load(Ordering::Relaxed),
            pages_served: m.pages_served.load(Ordering::Relaxed),
            cursors_opened: m.cursors_opened.load(Ordering::Relaxed),
            cursors_closed: m.cursors_closed.load(Ordering::Relaxed),
            cursors_expired: m.cursors_expired.load(Ordering::Relaxed),
            admission_rejected: m.admission_rejected.load(Ordering::Relaxed),
            open_cursors: self.admission.open.load(Ordering::Relaxed),
            ttf_min_us: if count == 0 { 0 } else { min },
            ttf_mean_us: m
                .ttf_sum_us
                .load(Ordering::Relaxed)
                .checked_div(count)
                .unwrap_or(0),
            ttf_max_us: m.ttf_max_us.load(Ordering::Relaxed),
            ttf_p50_us: m.ttf_hist.percentile(0.50),
            ttf_p95_us: m.ttf_hist.percentile(0.95),
            ttf_p99_us: m.ttf_hist.percentile(0.99),
            page_p50_us: m.page_hist.percentile(0.50),
            page_p95_us: m.page_hist.percentile(0.95),
            page_p99_us: m.page_hist.percentile(0.99),
            connections_rejected: m.connections_rejected.load(Ordering::Relaxed),
            open_connections: self.connections.open.load(Ordering::Relaxed),
            cache: self.backend.cache_stats(),
            index: self.backend.index_stats(),
            shards: self.backend.shards(),
            prepare_p50_us: prepare.percentile(0.50),
            prepare_p95_us: prepare.percentile(0.95),
            prepare_p99_us: prepare.percentile(0.99),
            delay_p50_us: delay.percentile(0.50),
            delay_p99_us: delay.percentile(0.99),
            traces_published: ring.published,
            traces_dropped: ring.dropped,
            slow_queries: self.obs.slow().len(),
            appends: writes.appends,
            appended_rows: writes.appended_rows,
            compactions: writes.compactions,
            append_invalidations: writes.invalidated_plans,
            routes,
        }
    }

    /// Engine-side histograms for `STATS`: every shard records prepare
    /// times and sampled delays into its **own** registry, so the
    /// service merges them **bucket-wise** — position-aligned
    /// power-of-two buckets make the merged percentiles exactly what
    /// one histogram over all shards' samples would report, at any
    /// shard count.
    fn merged_engine_hists(&self) -> (Histogram, Histogram) {
        match &self.backend {
            Backend::Single(engine) => (
                Histogram::merged([engine.obs().prepare_hist()]),
                Histogram::merged([engine.obs().delay_hist()]),
            ),
            Backend::Sharded(sharded) => (
                Histogram::merged(
                    sharded
                        .shard_engines()
                        .iter()
                        .map(|e| e.obs().prepare_hist()),
                ),
                Histogram::merged(sharded.shard_engines().iter().map(|e| e.obs().delay_hist())),
            ),
        }
    }
}

/// [`QueryTrace::index`] code for a plan's index provenance
/// (0 = n/a, 1 = cached, 2 = built — mirrored by the wire layer).
fn index_code(index: anyk_engine::IndexUse) -> u64 {
    match index {
        IndexUse::NotApplicable => 0,
        IndexUse::Cached => 1,
        IndexUse::Built => 2,
    }
}

/// Copy a merged stream's live [`ShardFanIn`] counters into `trace`:
/// shard count, tournament depth, per-shard rows (truncated at the
/// trace's fixed fan-in width), and — staged temporarily in the merge
/// slot for [`fill_stages`] to clamp — merge-machinery wall time.
fn stage_fan_in(trace: &mut QueryTrace, fan_in: Option<&ShardFanIn>) {
    let Some(fan_in) = fan_in else {
        trace.shards = 1;
        return;
    };
    trace.shards = fan_in.shards() as u64;
    trace.merge_depth = u64::from(fan_in.depth());
    trace.stage_us[Stage::Merge as usize] = fan_in.merge_us();
    for (slot, rows) in trace.shard_rows.iter_mut().zip(fan_in.rows()) {
        *slot = rows;
    }
}

/// Distribute one query's measured wall intervals over the stage
/// taxonomy so the stages stay contiguous (their sum equals the sum
/// of the inputs): prepare is carved out of the plan interval (the
/// remainder is spawn), merge out of the pull interval (the remainder
/// is pure pull). Expects any merge time pre-staged in the merge slot
/// by [`stage_fan_in`].
fn fill_stages(
    trace: &mut QueryTrace,
    parse_us: u64,
    admission_us: u64,
    prepare_us: u64,
    plan_wall_us: u64,
    pull_wall_us: u64,
) {
    let prepare = prepare_us.min(plan_wall_us);
    let merge = trace.stage_us[Stage::Merge as usize].min(pull_wall_us);
    trace.stage_us[Stage::Parse as usize] = parse_us;
    trace.stage_us[Stage::Admission as usize] = admission_us;
    trace.stage_us[Stage::Prepare as usize] = prepare;
    trace.stage_us[Stage::Spawn as usize] = plan_wall_us - prepare;
    trace.stage_us[Stage::Merge as usize] = merge;
    trace.stage_us[Stage::Pull as usize] = pull_wall_us - merge;
}

/// Lower an `INSERT`'s literal rows into a relation batch. The first
/// row fixes the cell count (attributes plus the trailing weight);
/// a row that disagrees is a typed [`ServeError::RaggedInsert`]. The
/// batch's arity against the target relation is the engine's check —
/// it owns the catalog and reports the typed arity error.
fn insert_batch(stmt: &crate::ast::InsertStmt) -> Result<anyk_storage::Relation, ServeError> {
    use anyk_storage::{RelationBuilder, Schema, Value, Weight};
    let width = stmt.rows.first().map_or(1, Vec::len);
    let arity = width - 1;
    let mut b = RelationBuilder::new(Schema::new((0..arity).map(|i| format!("c{i}"))));
    for (i, row) in stmt.rows.iter().enumerate() {
        if row.len() != width {
            return Err(ServeError::RaggedInsert {
                row: i,
                cells: row.len(),
                expected: width,
            });
        }
        let cells: Vec<Value> = row[..arity]
            .iter()
            .map(|lit| match *lit {
                crate::ast::Literal::Int(v) => Value::Int(v),
                crate::ast::Literal::Float(bits) => Value::Float(bits),
            })
            .collect();
        b.push(&cells, Weight::new(row[arity].as_f64()));
    }
    Ok(b.finish())
}

/// A live cursor's session-owned half: the stream itself. The shared
/// half — deadline and admission slot — lives in the service's
/// [`SharedDeadlines`] map under this cursor's [`CursorKey`], where
/// other threads can reap it.
struct Cursor {
    stream: RankedStream,
    /// One answer pulled ahead of the last page, so `done` is exact:
    /// a page only reports `done=false` when a further answer is
    /// proven to exist (an exactly-page-sized result must not pin a
    /// cursor and its admission slot).
    lookahead: Option<RankedAnswer>,
}

/// Pull up to `n` answers plus one lookahead. Returns the page and
/// whether the stream is now proven exhausted; a surplus answer goes
/// back into `lookahead` for the next page.
fn pull_page(
    stream: &mut RankedStream,
    lookahead: &mut Option<RankedAnswer>,
    n: usize,
) -> (Vec<RankedAnswer>, bool) {
    let mut answers = Vec::with_capacity(n.min(1024) + 1);
    answers.extend(lookahead.take());
    while answers.len() <= n {
        match stream.next() {
            Some(a) => answers.push(a),
            None => return (answers, true),
        }
    }
    *lookahead = answers.pop();
    (answers, false)
}

/// One client's session: a registry of live cursors over the shared
/// service. Sessions are owned by a single client (connection thread
/// or [`LocalClient`](crate::LocalClient)); the heavy state — prepared
/// queries, the plan cache, metrics — lives in the shared [`Service`].
pub struct Session {
    /// Service-wide unique id; the session half of every [`CursorKey`]
    /// this session registers in the shared deadline map.
    id: u64,
    service: Service,
    cursors: HashMap<u64, Cursor>,
    /// Ids reaped by the TTL, kept so `NEXT`/`CLOSE` on them report
    /// [`ServeError::CursorExpired`] instead of "unknown". Bounded at
    /// [`EXPIRED_MEMORY`]: a session cycling cursors under admission
    /// pressure must not accumulate memory or per-command scan cost —
    /// ids evicted from this window degrade to `UnknownCursor`.
    expired: VecDeque<u64>,
    next_cursor: u64,
    /// The trace of the command this session just ran, waiting for the
    /// wire layer to stamp its encode time (and total) before
    /// publication — so `SELECT` traces carry true end-to-end times.
    pending: Option<QueryTrace>,
}

/// How many reaped cursor ids a session remembers for the typed
/// `CursorExpired` reply (oldest evicted first).
const EXPIRED_MEMORY: usize = 1024;

impl Session {
    /// Parse and run one command, timing the parse stage for the
    /// command's trace.
    pub fn execute(&mut self, input: &str) -> Result<Response, ServeError> {
        let enabled = self.service.obs.enabled();
        let t0 = if enabled { self.service.now_us() } else { 0 };
        let cmd = parse(input)?;
        let parse_us = if enabled {
            self.service.now_us().saturating_sub(t0)
        } else {
            0
        };
        self.run_timed(cmd, parse_us)
    }

    /// Run an already-parsed command (parse stage reported as 0).
    pub fn run(&mut self, cmd: Command) -> Result<Response, ServeError> {
        self.run_timed(cmd, 0)
    }

    fn run_timed(&mut self, cmd: Command, parse_us: u64) -> Result<Response, ServeError> {
        // A caller that bypasses the wire layer (direct `run`) never
        // reaches `finish_trace`; flush any leftover trace now, with
        // no encode stage, so it still lands in the ring exactly once.
        self.finish_trace(0);
        self.reap_expired();
        match cmd {
            Command::Select(stmt) => self.select(stmt, parse_us),
            Command::ExplainAnalyze(stmt) => self.explain_analyze(stmt, parse_us),
            Command::Trace { last } => Ok(Response::Traces {
                slow: false,
                traces: self.service.obs.recent(last),
            }),
            Command::TraceSlow => Ok(Response::Traces {
                slow: true,
                traces: self.service.obs.slow(),
            }),
            Command::Explain(stmt) => {
                let text = self.service.backend.explain(stmt.to_cq(), stmt.rank)?;
                Ok(Response::Explained(text))
            }
            Command::Insert(stmt) => {
                let batch = insert_batch(&stmt)?;
                self.append(&stmt.relation, batch)
            }
            Command::Load(stmt) => {
                let batch = anyk_storage::read_csv(stmt.csv.as_bytes()).map_err(|e| {
                    ServeError::CsvRejected {
                        message: e.to_string(),
                    }
                })?;
                self.append(&stmt.relation, batch)
            }
            Command::Next { count, cursor } => self.next(count, cursor),
            Command::Close { cursor } => {
                if self.cursors.remove(&cursor).is_some() {
                    if !self.service.deadlines.remove((self.id, cursor)) {
                        // Reaped between our sweep and now (a racing
                        // admission pass): the slot is already free
                        // and counted expired.
                        self.remember_expired(cursor);
                        return Err(ServeError::CursorExpired { cursor });
                    }
                    self.service
                        .metrics
                        .cursors_closed
                        .fetch_add(1, Ordering::Relaxed);
                    Ok(Response::Closed { cursor })
                } else if self.expired.contains(&cursor) {
                    // Consistent with NEXT: a timed-out cursor reports
                    // *expired*, not unknown.
                    Err(ServeError::CursorExpired { cursor })
                } else {
                    Err(ServeError::UnknownCursor { cursor })
                }
            }
            Command::Stats => Ok(Response::Stats(Box::new(self.service.stats()))),
        }
    }

    /// Streams this session holds open right now.
    pub fn open_cursors(&self) -> usize {
        self.cursors.len()
    }

    /// Stamp the pending trace's encode stage, total it, and publish
    /// it to the trace ring (and the slow-query log past the
    /// threshold). Called by the wire layer after rendering the reply;
    /// a no-op when no trace is pending.
    pub(crate) fn finish_trace(&mut self, encode_us: u64) {
        if let Some(mut trace) = self.pending.take() {
            trace.stage_us[Stage::Encode as usize] = encode_us;
            trace.total_us = trace.stage_sum_us();
            self.service
                .obs
                .publish(&trace, self.service.slow_threshold_us());
        }
    }

    /// Current µs reading of the service clock (for the wire layer's
    /// encode-stage timing).
    pub(crate) fn now_us(&self) -> u64 {
        self.service.now_us()
    }

    /// Whether trace recording is live (the wire layer skips its
    /// encode-stage clock reads otherwise).
    pub(crate) fn tracing(&self) -> bool {
        self.pending.is_some()
    }

    /// Record a reaped cursor id for the typed `CursorExpired` reply,
    /// bounded at [`EXPIRED_MEMORY`] (oldest forgotten first).
    fn remember_expired(&mut self, cursor: u64) {
        if self.expired.len() == EXPIRED_MEMORY {
            self.expired.pop_front();
        }
        self.expired.push_back(cursor);
    }

    fn select(
        &mut self,
        stmt: crate::ast::SelectStmt,
        parse_us: u64,
    ) -> Result<Response, ServeError> {
        let metrics = Arc::clone(&self.service.metrics);
        let obs = Arc::clone(&self.service.obs);
        let enabled = obs.enabled();
        let t_enter_us = if enabled { obs.now_us() } else { 0 };
        let slot = match self.service.admission.try_acquire() {
            Some(slot) => slot,
            None => {
                // Admission consults the shared deadline map: a full
                // service first reaps expired cursors — releasing
                // slots a silent session would otherwise pin — then
                // retries once before rejecting.
                self.service.reap_expired_cursors();
                self.service.admission.try_acquire().ok_or_else(|| {
                    metrics.admission_rejected.fetch_add(1, Ordering::Relaxed);
                    ServeError::AdmissionRejected {
                        open: self.service.admission.open.load(Ordering::Relaxed),
                        max: self.service.admission.max,
                    }
                })?
            }
        };
        let page_size = stmt.limit.unwrap_or(self.service.config.default_page);
        let started_us = obs.now_us();
        // Prepared through the engine's plan cache (every shard's, on a
        // sharded backend): repeated SELECTs of one query shape share
        // preprocessing across all sessions.
        let (mut stream, report, fan_in) =
            self.service.backend.plan_report(stmt.to_cq(), stmt.rank)?;
        let t_planned_us = if enabled { obs.now_us() } else { 0 };
        let mut lookahead = None;
        let (answers, done) = pull_page(&mut stream, &mut lookahead, page_size);
        let end_us = obs.now_us();
        let served_us = end_us.saturating_sub(started_us);
        if !answers.is_empty() {
            metrics.record_ttf(served_us);
        }
        metrics.record_page(served_us);
        metrics.queries.fetch_add(1, Ordering::Relaxed);
        metrics.pages_served.fetch_add(1, Ordering::Relaxed);
        metrics
            .answers_served
            .fetch_add(answers.len() as u64, Ordering::Relaxed);
        if enabled {
            let route = route_id(stream.plan().route.label());
            let rank = rank_id(&stmt.rank.to_string());
            obs.record_query(
                route,
                rank,
                answers.len() as u64,
                (!answers.is_empty()).then_some(served_us),
            );
            let mut trace = QueryTrace {
                id: obs.next_id(),
                route,
                rank,
                cache: u64::from(report.cache_hit),
                index: index_code(stream.plan().index),
                rows: answers.len() as u64,
                limit: page_size as u64,
                ..QueryTrace::default()
            };
            stage_fan_in(&mut trace, fan_in.as_deref());
            let plan_wall = t_planned_us.saturating_sub(started_us);
            let pull_wall = end_us.saturating_sub(t_planned_us);
            fill_stages(
                &mut trace,
                parse_us,
                started_us.saturating_sub(t_enter_us),
                report.prepare_us,
                plan_wall,
                pull_wall,
            );
            self.pending = Some(trace);
        }
        if done {
            // Exhausted in one page: no cursor, the slot frees now.
            return Ok(Response::Page(Page {
                cursor: None,
                answers,
                done: true,
            }));
        }
        let id = self.next_cursor;
        self.next_cursor += 1;
        self.cursors.insert(id, Cursor { stream, lookahead });
        self.service.deadlines.insert(
            (self.id, id),
            self.service.now_us().saturating_add(self.service.ttl_us()),
            slot,
        );
        metrics.cursors_opened.fetch_add(1, Ordering::Relaxed);
        Ok(Response::Page(Page {
            cursor: Some(id),
            answers,
            done: false,
        }))
    }

    /// The shared write path behind `INSERT` and `LOAD`: bound the
    /// batch, append through the backend (delta batch + relation-scoped
    /// plan invalidation; open cursors keep their snapshot), and
    /// acknowledge with the relation's live delta state.
    fn append(
        &mut self,
        name: &str,
        batch: anyk_storage::Relation,
    ) -> Result<Response, ServeError> {
        let max = self.service.config.max_batch_rows;
        if batch.len() > max {
            return Err(ServeError::BatchTooLarge {
                rows: batch.len(),
                max,
            });
        }
        let rows = batch.len() as u64;
        let (deltas, compacted) = self.service.backend.append(name, batch)?;
        Ok(Response::Appended {
            rows,
            deltas,
            compacted,
        })
    }

    fn next(&mut self, count: usize, cursor: u64) -> Result<Response, ServeError> {
        if self.expired.contains(&cursor) {
            return Err(ServeError::CursorExpired { cursor });
        }
        let mut cur = self
            .cursors
            .remove(&cursor)
            .ok_or(ServeError::UnknownCursor { cursor })?;
        // Refresh the shared deadline *before* pulling, so a racing
        // admission reap can't free the slot mid-pull; a failed touch
        // means the cursor was reaped since our sweep — expired.
        let touched = self.service.deadlines.touch(
            (self.id, cursor),
            self.service.now_us().saturating_add(self.service.ttl_us()),
        );
        if !touched {
            self.remember_expired(cursor);
            return Err(ServeError::CursorExpired { cursor });
        }
        let started_us = self.service.now_us();
        let (answers, done) = pull_page(&mut cur.stream, &mut cur.lookahead, count);
        let metrics = Arc::clone(&self.service.metrics);
        metrics.record_page(self.service.now_us().saturating_sub(started_us));
        metrics.pages_served.fetch_add(1, Ordering::Relaxed);
        metrics
            .answers_served
            .fetch_add(answers.len() as u64, Ordering::Relaxed);
        if done {
            // Drained: the cursor closes itself (slot released). If
            // the entry vanished mid-pull — a sweep ran after our
            // touch — it was already counted expired; don't also
            // count it closed (opened == closed + expired must hold).
            if self.service.deadlines.remove((self.id, cursor)) {
                metrics.cursors_closed.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Response::Page(Page {
                cursor: None,
                answers,
                done: true,
            }))
        } else {
            self.cursors.insert(cursor, cur);
            Ok(Response::Page(Page {
                cursor: Some(cursor),
                answers,
                done: false,
            }))
        }
    }

    /// `EXPLAIN ANALYZE SELECT …`: run the query to its page limit
    /// with every stage of its life timed on the service clock, and
    /// report where the time went instead of the answers. The stages
    /// are contiguous sub-spans of one measured wall interval, so the
    /// report's stage sum equals its wall time by construction (E19
    /// pins the two within 10% over every route × ranking). The run
    /// is real — admission, plan cache, index catalog, shard merge —
    /// but holds no cursor: the admission slot frees on return, and
    /// page/answer metrics are left untouched (it is a diagnostic
    /// command, not traffic). Its trace still enters the ring.
    fn explain_analyze(
        &mut self,
        stmt: crate::ast::SelectStmt,
        parse_us: u64,
    ) -> Result<Response, ServeError> {
        let metrics = Arc::clone(&self.service.metrics);
        let obs = Arc::clone(&self.service.obs);
        let t_enter_us = obs.now_us();
        let _slot = match self.service.admission.try_acquire() {
            Some(slot) => slot,
            None => {
                self.service.reap_expired_cursors();
                self.service.admission.try_acquire().ok_or_else(|| {
                    metrics.admission_rejected.fetch_add(1, Ordering::Relaxed);
                    ServeError::AdmissionRejected {
                        open: self.service.admission.open.load(Ordering::Relaxed),
                        max: self.service.admission.max,
                    }
                })?
            }
        };
        let page_size = stmt.limit.unwrap_or(self.service.config.default_page);
        let t_admitted_us = obs.now_us();
        let (mut stream, report, fan_in) =
            self.service.backend.plan_report(stmt.to_cq(), stmt.rank)?;
        let t_planned_us = obs.now_us();
        let mut lookahead = None;
        let (answers, _done) = pull_page(&mut stream, &mut lookahead, page_size);
        let t_pulled_us = obs.now_us();

        let route_label = stream.plan().route.label();
        let rank_label = stmt.rank.to_string();
        let route = route_id(route_label);
        let rank = rank_id(&rank_label);
        let mut trace = QueryTrace {
            id: obs.next_id(),
            route,
            rank,
            cache: u64::from(report.cache_hit),
            index: index_code(stream.plan().index),
            rows: answers.len() as u64,
            limit: page_size as u64,
            ..QueryTrace::default()
        };
        stage_fan_in(&mut trace, fan_in.as_deref());
        fill_stages(
            &mut trace,
            parse_us,
            t_admitted_us.saturating_sub(t_enter_us),
            report.prepare_us,
            t_planned_us.saturating_sub(t_admitted_us),
            t_pulled_us.saturating_sub(t_planned_us),
        );
        obs.record_query(route, rank, answers.len() as u64, None);
        if obs.enabled() {
            // Published now, encode stage 0: the report itself is the
            // reply, not part of the measured query.
            self.pending = Some(trace);
            self.finish_trace(0);
        }

        let report = AnalyzeReport {
            route: route_label.to_string(),
            rank: rank_label,
            cache_hit: report.cache_hit,
            index: stream.plan().index.label(),
            stage_us: trace.stage_us,
            // Encode is 0 here, so the contiguous stages sum to the
            // measured wall exactly.
            wall_us: parse_us.saturating_add(t_pulled_us.saturating_sub(t_enter_us)),
            rows: answers.len() as u64,
            limit: page_size as u64,
            shards: trace.shards as usize,
            shard_rows: fan_in.as_deref().map(ShardFanIn::rows).unwrap_or_default(),
            merge_depth: trace.merge_depth as u32,
        };
        Ok(Response::Analyzed(Box::new(report)))
    }

    /// Reconcile with the shared deadline map at the top of every
    /// command: expire this session's own overdue cursors and drop
    /// the streams of any whose entries are already gone (reaped by
    /// a full admission pass or the transport's timer) so
    /// `NEXT`/`CLOSE` on them report [`ServeError::CursorExpired`].
    /// Deliberately session-scoped — O(own cursors) under the map
    /// lock, never a service-wide scan; global sweeps belong to the
    /// admission-full path and the event-loop tick.
    fn reap_expired(&mut self) {
        if self.cursors.is_empty() {
            return;
        }
        let ids: Vec<u64> = self.cursors.keys().copied().collect();
        let (dead, expired) =
            self.service
                .deadlines
                .reap_session(self.id, &ids, self.service.now_us());
        if expired > 0 {
            self.service
                .metrics
                .cursors_expired
                .fetch_add(expired as u64, Ordering::Relaxed);
        }
        for id in dead {
            // The slot was already released (and counted) when the
            // shared entry went; this only frees the stream.
            self.cursors.remove(&id);
            self.remember_expired(id);
        }
    }
}

impl Drop for Session {
    /// A dropped session closes its cursors: shared entries are
    /// removed (admission slots release with them) and counted closed.
    /// Cursors already reaped by the TTL were counted expired — not
    /// recounted here.
    fn drop(&mut self) {
        let mut closed = 0u64;
        for (&id, _) in self.cursors.iter() {
            if self.service.deadlines.remove((self.id, id)) {
                closed += 1;
            }
        }
        if closed > 0 {
            self.service
                .metrics
                .cursors_closed
                .fetch_add(closed, Ordering::Relaxed);
        }
    }
}

// One service, many sessions, any number of threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<Service>();
    assert_send::<Session>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_deadlines_spread_and_account_exactly() {
        let admission = Arc::new(Admission {
            open: AtomicUsize::new(0),
            max: 1024,
        });
        let deadlines = SharedDeadlines::default();
        let now = 1_000_000u64;
        let far = now + 60_000_000;
        // 64 entries over 8 sessions; odd-parity keys get an already-
        // due deadline, even-parity ones a far-future one.
        for session in 0..8u64 {
            for cursor in 0..8u64 {
                let slot = admission.try_acquire().expect("slot");
                let deadline = if (session + cursor) % 2 == 0 {
                    far
                } else {
                    now
                };
                deadlines.insert((session, cursor), deadline, slot);
            }
        }
        assert_eq!(admission.open.load(Ordering::Relaxed), 64);
        // The hash actually stripes: more than one shard is occupied.
        let occupied = deadlines
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap_or_else(PoisonError::into_inner).is_empty())
            .count();
        assert!(occupied > 1, "all entries landed in one shard");
        // touch rescues a due entry; remove releases exactly one slot
        // and is idempotent-false afterwards.
        assert!(deadlines.touch((0, 1), far));
        assert!(deadlines.remove((0, 0)));
        assert!(!deadlines.remove((0, 0)));
        assert_eq!(admission.open.load(Ordering::Relaxed), 63);
        // Reap: exactly the 32 due entries minus the touched one go,
        // and every reaped entry returns its admission slot.
        let reaped = deadlines.reap(now + 1_000);
        assert_eq!(reaped, 31);
        assert_eq!(admission.open.load(Ordering::Relaxed), 32);
        // The session-scoped sweep reports the reaped ids as dead
        // without double-counting them as expired.
        let ids: Vec<u64> = (0..8).collect();
        let (dead, expired) = deadlines.reap_session(1, &ids, now + 1_000);
        assert_eq!(expired, 0);
        assert_eq!(dead, vec![0, 2, 4, 6]);
    }

    #[test]
    fn accept_shedding_rejects_and_counts() {
        use crate::tcp::{Server, TcpClient, Transport, TransportConfig};
        for transport in [Transport::ThreadPerConn, Transport::EventLoop] {
            let service = Service::with_config(
                crate::tests_engine(),
                ServiceConfig {
                    max_connections: 1,
                    ..ServiceConfig::default()
                },
            );
            let mut server = Server::bind_with(
                service.clone(),
                "127.0.0.1:0",
                TransportConfig {
                    transport,
                    workers: 2,
                    ..TransportConfig::default()
                },
            )
            .expect("bind");
            let mut first = TcpClient::connect(server.addr()).expect("connect");
            let reply = first
                .send("SELECT R(a,b) RANK BY sum LIMIT 1;")
                .expect("select");
            assert!(reply.starts_with("OK"), "{transport:?}: {reply}");
            assert_eq!(service.stats().open_connections, 1, "{transport:?}");
            // The second connection is shed at accept time with one
            // typed reply, before any session state exists.
            let mut second = TcpClient::connect(server.addr()).expect("connect");
            let reply = second.read_reply().expect("reject block");
            assert_eq!(
                reply, "ERR admission: connections 1 of 1 open\nEND\n",
                "{transport:?}"
            );
            let stats = service.stats();
            assert_eq!(stats.connections_rejected, 1, "{transport:?}");
            assert_eq!(stats.open_connections, 1, "{transport:?}");
            server.shutdown();
        }
    }

    #[test]
    fn stats_surface_index_catalog_counters() {
        use anyk_storage::{Catalog, RelationBuilder, Schema};
        let mut catalog = Catalog::new();
        for name in ["R", "S", "T"] {
            let mut b = RelationBuilder::new(Schema::new(["x", "y"]));
            for i in 0..4i64 {
                for j in 0..4i64 {
                    if i != j {
                        b.push_ints(&[i, j], 0.1 * (i * 4 + j + 1) as f64);
                    }
                }
            }
            catalog.register(name, b.finish());
        }
        let service = Service::new(Engine::new(catalog));
        let mut client = crate::LocalClient::new(&service);
        // A cyclic query routes through the shared index catalog.
        let reply = client.send("SELECT R(x,y), S(y,z), T(z,x) RANK BY sum LIMIT 1;");
        assert!(reply.starts_with("OK"), "{reply}");
        let stats = service.stats();
        assert!(stats.index.builds > 0, "triangle prepare builds tries");
        assert!(stats.index.resident_bytes > 0);
        let stats_reply = client.send("STATS");
        for key in [
            "index_hits",
            "index_misses",
            "index_builds",
            "index_evictions",
            "index_resident_bytes",
            "index_entries",
            "index_capacity_bytes",
            "open_connections",
            "connections_rejected",
        ] {
            assert!(
                stats_reply.contains(&format!("INFO {key}=")),
                "STATS missing {key}: {stats_reply}"
            );
        }
    }

    #[test]
    fn shared_deadline_map_reaps_only_past_deadlines() {
        let service = Service::new(crate::tests_engine());
        let mut session = service.session();
        let resp = session
            .execute("SELECT R(a,b) LIMIT 1;")
            .expect("select opens a cursor");
        let Response::Page(page) = resp else { panic!() };
        assert!(page.cursor.is_some());
        assert_eq!(service.stats().open_cursors, 1);
        // The deadline (default 60 s) is in the future: no reap.
        assert_eq!(service.reap_expired_cursors(), 0);
        assert_eq!(service.stats().open_cursors, 1);
    }

    /// Regression pin for satellite truthfulness: per-shard histograms
    /// merge **bucket-wise**, so a skewed two-shard service reports
    /// exactly the percentiles one histogram over both shards' samples
    /// would — the old "average the percentiles" style of aggregation
    /// would report a p99 near shard 0's (tiny) tail instead.
    #[test]
    fn sharded_stats_percentiles_are_truthful_under_skew() {
        use anyk_engine::ShardedEngine;
        use anyk_storage::{Catalog, RelationBuilder, Schema};
        let mut catalog = Catalog::new();
        let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
        for i in 0..8i64 {
            r.push_ints(&[i, i + 10], 0.1 * (i as f64 + 1.0));
        }
        catalog.register("R", r.finish());
        let sharded = ShardedEngine::new(catalog, 2).expect("2 shards");
        let service = Service::sharded(sharded);
        let engines = service.sharded_engine().expect("sharded").shard_engines();
        // Shard 0 is fast (90 × 8 µs), shard 1 slow (10 × 8000 µs).
        let reference = Histogram::default();
        for _ in 0..90 {
            engines[0].obs().record_prepare(8);
            reference.record(8);
        }
        for _ in 0..10 {
            engines[1].obs().record_prepare(8_000);
            reference.record(8_000);
        }
        let stats = service.stats();
        assert_eq!(stats.prepare_p50_us, reference.percentile(0.50));
        assert_eq!(stats.prepare_p99_us, reference.percentile(0.99));
        // The slow shard's tail dominates the merged p99; shard 0
        // alone would report < 16 µs.
        assert!(stats.prepare_p99_us >= 4_096, "{}", stats.prepare_p99_us);
        assert!(engines[0].obs().prepare_hist().percentile(0.99) < 16);
    }

    #[test]
    fn select_publishes_a_complete_trace() {
        let service = Service::new(crate::tests_engine());
        let mut client = crate::LocalClient::new(&service);
        let reply = client.send("SELECT R(a,b) RANK BY max LIMIT 3;");
        assert!(reply.starts_with("OK"), "{reply}");
        let traces = service.obs().recent(8);
        assert_eq!(traces.len(), 1);
        let t = traces[0];
        assert_eq!(t.route, anyk_obs::route_id("acyclic"));
        assert_eq!(t.rank, anyk_obs::rank_id("max"));
        assert_eq!(t.rows, 3);
        assert_eq!(t.limit, 3);
        assert_eq!(t.shards, 1);
        assert_eq!(t.merge_depth, 0);
        assert_eq!(t.total_us, t.stage_sum_us());
        let stats = service.obs().ring_stats();
        assert_eq!(stats.published, 1);
        assert_eq!(stats.dropped, 0);
        // The trace also shows up over the wire, newest first.
        let reply = client.send("SELECT R(a,b) RANK BY sum LIMIT 1;");
        assert!(reply.starts_with("OK"), "{reply}");
        let reply = client.send("TRACE 2;");
        assert!(
            reply.starts_with("OK traces count=2 source=ring"),
            "{reply}"
        );
        let first = reply.lines().nth(1).expect("newest trace line");
        assert!(first.contains("rank=sum"), "{first}");
    }

    #[test]
    fn slow_log_obeys_the_configured_threshold() {
        // Threshold 0 disables the log entirely.
        let off = Service::with_config(
            crate::tests_engine(),
            ServiceConfig {
                slow_query: Duration::ZERO,
                ..ServiceConfig::default()
            },
        );
        let mut client = crate::LocalClient::new(&off);
        client.send("SELECT R(a,b) LIMIT 1;");
        assert_eq!(
            client.send("TRACE SLOW;"),
            "OK traces count=0 source=slow\nEND\n"
        );
        // A 1 µs threshold catches any real query (stage times round
        // up to ≥ 0; the total of a real select is ≥ 1 µs in practice
        // only when some stage measured — so give it a real pull).
        let on = Service::with_config(
            crate::tests_engine(),
            ServiceConfig {
                slow_query: Duration::from_micros(1),
                ..ServiceConfig::default()
            },
        );
        let mut client = crate::LocalClient::new(&on);
        client.send("SELECT R(a,b) LIMIT 4;");
        let traces = on.obs().slow();
        let ring = on.obs().recent(1);
        assert_eq!(ring.len(), 1);
        if ring[0].total_us >= 1 {
            assert_eq!(traces.len(), 1, "slow log missed a qualifying trace");
            assert_eq!(traces[0].id, ring[0].id);
        } else {
            assert!(traces.is_empty(), "sub-threshold trace logged as slow");
        }
    }

    #[test]
    fn explain_analyze_executes_and_reports_consistent_stages() {
        let service = Service::new(crate::tests_engine());
        let mut session = service.session();
        let resp = session
            .execute("EXPLAIN ANALYZE SELECT R(a,b) RANK BY sum LIMIT 5;")
            .expect("analyze");
        let Response::Analyzed(report) = resp else {
            panic!("expected Analyzed, got {resp:?}");
        };
        assert_eq!(report.route, "acyclic");
        assert_eq!(report.rank, "sum");
        assert_eq!(report.rows, 5);
        assert_eq!(report.limit, 5);
        assert_eq!(report.shards, 1);
        assert_eq!(report.merge_depth, 0);
        assert!(report.shard_rows.is_empty());
        // Contiguous stages: the sum equals the measured wall exactly
        // (encode is rendered by the wire layer, not part of the run).
        let sum: u64 = report.stage_us.iter().sum();
        assert_eq!(sum, report.wall_us);
        // No cursor was registered and no admission slot leaked.
        assert_eq!(service.stats().open_cursors, 0);
        // Page/answer metrics untouched: it is diagnostics, not traffic.
        assert_eq!(service.stats().pages_served, 0);
        // But the run is real and traced.
        assert_eq!(service.obs().ring_stats().published, 1);
    }

    #[test]
    fn explain_analyze_reports_shard_fan_in() {
        use anyk_engine::ShardedEngine;
        use anyk_storage::{Catalog, RelationBuilder, Schema};
        let mut catalog = Catalog::new();
        let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
        for i in 0..16i64 {
            r.push_ints(&[i, i + 10], 0.1 * (i as f64 + 1.0));
        }
        catalog.register("R", r.finish());
        let sharded = ShardedEngine::new(catalog, 2).expect("2 shards");
        let service = Service::sharded(sharded);
        let mut session = service.session();
        let resp = session
            .execute("EXPLAIN ANALYZE SELECT R(a,b) LIMIT 16;")
            .expect("analyze");
        let Response::Analyzed(report) = resp else {
            panic!("expected Analyzed, got {resp:?}");
        };
        assert_eq!(report.shards, 2);
        assert_eq!(report.merge_depth, 1);
        assert_eq!(report.shard_rows.len(), 2);
        // All 16 rows came through the merge: fan-in accounts ≥ the
        // answers (lookahead may pull extra rows per shard).
        let fed: u64 = report.shard_rows.iter().sum();
        assert!(fed >= report.rows, "{fed} < {}", report.rows);
        assert!(report.shard_rows.iter().all(|&r| r > 0), "{report:?}");
    }

    #[test]
    fn stats_carry_per_route_sections() {
        let service = Service::new(crate::tests_engine());
        let mut client = crate::LocalClient::new(&service);
        client.send("SELECT R(a,b) RANK BY max LIMIT 2;");
        client.send("SELECT R(a,b) RANK BY max LIMIT 2;");
        let stats = service.stats();
        let cell = stats.routes[0][anyk_obs::rank_id("max") as usize];
        assert_eq!(cell.queries, 2);
        assert_eq!(cell.answers, 4);
        assert!(cell.ttf_p50_us >= 1);
        let reply = client.send("STATS;");
        assert!(
            reply.contains("INFO route.acyclic.max.queries=2"),
            "{reply}"
        );
        assert!(
            reply.contains("INFO route.acyclic.max.answers=4"),
            "{reply}"
        );
        // Idle cells render nothing: STATS stays compact.
        assert!(!reply.contains("route.triangle"), "{reply}");
        assert!(reply.contains("INFO traces_published=2"), "{reply}");
    }
}
