//! The session layer: a [`Service`] wraps a shared
//! [`Engine`] and turns parsed [`Command`]s into paginated responses
//! over live ranked streams.
//!
//! * **Cursors** — a `SELECT` opens a [`RankedStream`] over the
//!   engine's (cached) prepared state, serves the first page, and
//!   registers a cursor for `NEXT` pulls.
//! * **Shared cursor deadlines** — every open cursor's expiry deadline
//!   (and its admission slot) lives in a **service-level deadline
//!   map**, not in the owning session. Streams stay session-owned
//!   (they are `Send` but not `Sync`), but the *slot* can be reaped
//!   from anywhere: admission consults the map when the service is
//!   full, the event-loop transport sweeps it on a timer tick, and a
//!   session prunes its own orphaned streams at the top of each
//!   command. A client that goes silent while holding cursors
//!   therefore cannot pin admission slots past the TTL — its next
//!   `NEXT`/`CLOSE` reports a typed [`ServeError::CursorExpired`].
//! * **Admission control** — a service-wide semaphore bounds how many
//!   streams may be open at once across all sessions; beyond it,
//!   `SELECT` first reaps expired deadlines and then, still full,
//!   fails with a typed [`ServeError::AdmissionRejected`] instead of
//!   letting per-stream heap state grow without bound.
//! * **Metrics** — per-query time-to-first-answer and per-page
//!   latency as both min/mean/max and fixed-bucket power-of-two
//!   **histograms** (p50/p95/p99 on read), answers served, cursor
//!   lifecycle counts, and the engine's plan-cache counters, all
//!   surfaced through the `STATS` command.
//!
//! ## Threading model
//!
//! [`Service`] is `Clone + Send + Sync`: clones are handles onto one
//! shared engine, admission semaphore, deadline map, and metrics
//! block. A [`Session`] is `Send` but single-owner — exactly one
//! client (connection or [`LocalClient`](crate::LocalClient)) drives
//! it, so cursor pulls never contend. Everything cross-session is
//! either lock-free (metrics, admission) or a short critical section
//! (the deadline map, the plan cache).

use crate::ast::Command;
use crate::parser::{parse, ParseError};
use anyk_engine::{
    CacheStats, Engine, EngineError, RankSpec, RankedAnswer, RankedStream, ShardedEngine,
};
use anyk_query::cq::ConjunctiveQuery;
use anyk_storage::IndexStats;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Configuration for a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Maximum number of concurrently open cursors (streams) across
    /// all sessions — the admission-control bound.
    pub max_open_cursors: usize,
    /// Idle time after which a cursor expires. Deadlines live in a
    /// **service-level shared map**, so expiry frees the admission
    /// slot even while the owning session stays silent: admission
    /// sweeps the map when the service is full, the event-loop
    /// transport sweeps it on a timer, and the owning session drops
    /// the orphaned stream (and reports
    /// [`ServeError::CursorExpired`]) on its next command.
    pub cursor_ttl: Duration,
    /// Page size when a `SELECT` carries no `LIMIT`.
    pub default_page: usize,
    /// Maximum concurrently established connections across all
    /// transports — accept-time load shedding. A connection admitted
    /// past this bound gets one typed `ERR admission: connections`
    /// reply and is closed before it ever reaches a worker, so a
    /// connection flood degrades into cheap rejects instead of
    /// unbounded per-connection state.
    pub max_connections: usize,
    /// Event-loop worker threads. `None` (the default) sizes the pool
    /// from [`std::thread::available_parallelism`] with a floor of 2
    /// and **no upper clamp** — big machines get big pools. `Some(n)`
    /// pins the pool; `Some(0)` is rejected at bind time with a typed
    /// [`BindError`](crate::BindError). Overridden by the
    /// `ANYK_SERVE_WORKERS` environment variable and by an explicit
    /// [`TransportConfig::workers`](crate::TransportConfig::workers),
    /// in that order of increasing precedence.
    pub workers: Option<usize>,
}

impl Default for ServiceConfig {
    /// 64 concurrent streams, 60 s cursor TTL, 10-answer pages,
    /// 1024 connections, auto-sized worker pool.
    fn default() -> Self {
        ServiceConfig {
            max_open_cursors: 64,
            cursor_ttl: Duration::from_secs(60),
            default_page: 10,
            max_connections: 1024,
            workers: None,
        }
    }
}

/// Why a command could not be served. Parse and engine failures are
/// wrapped; the session-layer failures (cursor lifecycle, admission)
/// are typed here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The command text did not parse.
    Parse(ParseError),
    /// The engine rejected the query (unknown relation, arity, ...).
    Engine(EngineError),
    /// `NEXT`/`CLOSE` on a cursor id this session never opened (or
    /// already closed/drained).
    UnknownCursor {
        /// The offending id.
        cursor: u64,
    },
    /// `NEXT` on a cursor that idled past the TTL and was reaped.
    CursorExpired {
        /// The expired id.
        cursor: u64,
    },
    /// `SELECT` rejected because the service is at its concurrent-
    /// stream bound.
    AdmissionRejected {
        /// Streams currently open.
        open: usize,
        /// The configured bound.
        max: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Parse(e) => write!(f, "parse: {e}"),
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::UnknownCursor { cursor } => write!(f, "unknown cursor {cursor}"),
            ServeError::CursorExpired { cursor } => write!(f, "cursor {cursor} expired"),
            ServeError::AdmissionRejected { open, max } => {
                write!(f, "admission rejected: {open} of {max} streams open")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Parse(e) => Some(e),
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for ServeError {
    fn from(e: ParseError) -> Self {
        ServeError::Parse(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// What a successfully served command returns.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A page of ranked answers (`SELECT` / `NEXT`).
    Page(Page),
    /// The rendered plan (`EXPLAIN`).
    Explained(String),
    /// Service metrics (`STATS`).
    Stats(Box<ServiceStats>),
    /// Acknowledgement of `CLOSE`.
    Closed {
        /// The closed cursor id.
        cursor: u64,
    },
}

/// One page of answers.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// The cursor to `NEXT` on for more answers — `None` when the
    /// stream is drained (drained cursors close themselves).
    pub cursor: Option<u64>,
    /// The answers, in ranking order, continuing where the previous
    /// page stopped.
    pub answers: Vec<RankedAnswer>,
    /// True when the stream is exhausted: no further page exists.
    /// Exact — the session pulls one answer of lookahead, so a result
    /// set that ends exactly at a page boundary still reports `done`
    /// (and holds no cursor).
    pub done: bool,
}

/// A snapshot of the service-level metrics (the `STATS` command).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceStats {
    /// `SELECT`s served (successful plans, including empty results).
    pub queries: u64,
    /// Total answers emitted across all pages.
    pub answers_served: u64,
    /// Pages served (`SELECT` first pages + `NEXT` pulls).
    pub pages_served: u64,
    /// Cursors ever registered.
    pub cursors_opened: u64,
    /// Cursors closed by `CLOSE`, by draining, or by session drop.
    pub cursors_closed: u64,
    /// Cursors reaped by the TTL.
    pub cursors_expired: u64,
    /// `SELECT`s refused by admission control.
    pub admission_rejected: u64,
    /// Streams open right now (the admission gauge).
    pub open_cursors: usize,
    /// Minimum observed time-to-first-answer, in microseconds.
    pub ttf_min_us: u64,
    /// Mean observed time-to-first-answer, in microseconds.
    pub ttf_mean_us: u64,
    /// Maximum observed time-to-first-answer, in microseconds.
    pub ttf_max_us: u64,
    /// Median time-to-first-answer from the fixed-bucket histogram,
    /// estimated by linear interpolation within the containing
    /// power-of-two bucket (the top bucket still reports its upper
    /// bound), in microseconds. 0 until a first answer is served.
    pub ttf_p50_us: u64,
    /// 95th-percentile time-to-first-answer (interpolated within its
    /// bucket), µs.
    pub ttf_p95_us: u64,
    /// 99th-percentile time-to-first-answer (interpolated within its
    /// bucket), µs.
    pub ttf_p99_us: u64,
    /// Median per-page serve latency (`SELECT` first pages and `NEXT`
    /// pulls alike; interpolated within its bucket), µs.
    pub page_p50_us: u64,
    /// 95th-percentile per-page serve latency (interpolated within its
    /// bucket), µs.
    pub page_p95_us: u64,
    /// 99th-percentile per-page serve latency (interpolated within its
    /// bucket), µs.
    pub page_p99_us: u64,
    /// Connections refused by accept-time load shedding.
    pub connections_rejected: u64,
    /// Connections established right now (the connection gauge).
    pub open_connections: usize,
    /// The engine's plan-cache counters (hits/misses/evictions/...) —
    /// summed across all shards on a sharded backend.
    pub cache: CacheStats,
    /// The index catalog's counters (hits/misses/builds/...) — summed
    /// across all shards on a sharded backend (each shard owns its own
    /// index catalog).
    pub index: IndexStats,
    /// How many engine shards serve this service (1 for a
    /// single-engine backend).
    pub shards: usize,
}

/// Power-of-two latency buckets (µs): bucket `i` counts samples in
/// `[2^i, 2^(i+1))`; the last bucket absorbs the tail. 32 buckets
/// reach past 71 minutes — far beyond any sane page latency.
const HIST_BUCKETS: usize = 32;

/// A lock-free fixed-bucket latency histogram: `record` is one relaxed
/// `fetch_add`, percentiles are computed on read (the `STATS` path),
/// so the per-page hot path never takes a lock or allocates.
#[derive(Debug)]
struct Histogram {
    counts: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    fn record(&self, us: u64) {
        let bucket = (us.max(1).ilog2() as usize).min(HIST_BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The inclusive upper bound of bucket `i`, in µs.
    fn upper_bound(i: usize) -> u64 {
        (1u64 << (i + 1)) - 1
    }

    /// The latency below which fraction `p` of samples fall, estimated
    /// by **linear interpolation within the containing power-of-two
    /// bucket**: the sample's rank inside the bucket positions it
    /// between the bucket's bounds, assuming samples spread uniformly
    /// there. (Reporting the raw upper bound — the old behaviour —
    /// overstated a median sitting at a bucket's lower edge by up to
    /// 2×.) The open-ended top bucket has no interior to interpolate,
    /// so it still reports its conservative upper bound. 0 while the
    /// histogram is empty.
    fn percentile(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if cum + c >= target && c > 0 {
                if i == HIST_BUCKETS - 1 {
                    return Self::upper_bound(i);
                }
                // Bucket i covers [2^i, 2^(i+1)); rank (1-based) of the
                // target sample within it interpolates across that span.
                let lo = 1u64 << i;
                let span = lo;
                let rank = target - cum;
                return (lo + (rank * span) / c).min(Self::upper_bound(i));
            }
            cum += c;
        }
        Self::upper_bound(HIST_BUCKETS - 1)
    }
}

/// Cumulative counters behind [`ServiceStats`] — lock-free, shared by
/// every session and every clone of the service.
#[derive(Debug, Default)]
struct Metrics {
    queries: AtomicU64,
    answers_served: AtomicU64,
    pages_served: AtomicU64,
    cursors_opened: AtomicU64,
    cursors_closed: AtomicU64,
    cursors_expired: AtomicU64,
    admission_rejected: AtomicU64,
    connections_rejected: AtomicU64,
    ttf_count: AtomicU64,
    ttf_sum_us: AtomicU64,
    ttf_min_us: AtomicU64,
    ttf_max_us: AtomicU64,
    ttf_hist: Histogram,
    page_hist: Histogram,
}

impl Metrics {
    fn record_ttf(&self, us: u64) {
        // Sub-microsecond first pages round up to 1 µs on both bounds
        // (an asymmetric clamp could report min > max).
        let us = us.max(1);
        self.ttf_count.fetch_add(1, Ordering::Relaxed);
        self.ttf_sum_us.fetch_add(us, Ordering::Relaxed);
        self.ttf_min_us.fetch_min(us, Ordering::Relaxed);
        self.ttf_max_us.fetch_max(us, Ordering::Relaxed);
        self.ttf_hist.record(us);
    }

    fn record_page(&self, us: u64) {
        self.page_hist.record(us.max(1));
    }
}

/// Microseconds since `started`, saturating into `u64`.
fn elapsed_us(started: Instant) -> u64 {
    started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// The admission-control semaphore: a counter bounded by
/// `max_open_cursors`, acquired per open stream and released by the
/// guard's `Drop` (so a dropped session can never leak slots).
#[derive(Debug)]
struct Admission {
    open: AtomicUsize,
    max: usize,
}

impl Admission {
    /// Try to take a slot; `None` when the service is at its bound.
    fn try_acquire(self: &Arc<Self>) -> Option<AdmissionSlot> {
        let mut cur = self.open.load(Ordering::Relaxed);
        loop {
            if cur >= self.max {
                return None;
            }
            match self
                .open
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    return Some(AdmissionSlot {
                        admission: Arc::clone(self),
                    })
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

#[derive(Debug)]
struct AdmissionSlot {
    admission: Arc<Admission>,
}

impl Drop for AdmissionSlot {
    fn drop(&mut self) {
        self.admission.open.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The connection-level admission gauge: a counter bounded by
/// [`ServiceConfig::max_connections`], acquired at accept time and
/// released by the slot's `Drop` — a connection that dies on any path
/// (clean close, I/O error, panic unwind) always returns its slot.
#[derive(Debug)]
struct ConnectionGauge {
    open: AtomicUsize,
    max: usize,
}

impl ConnectionGauge {
    fn try_acquire(self: &Arc<Self>) -> Option<ConnectionSlot> {
        let mut cur = self.open.load(Ordering::Relaxed);
        loop {
            if cur >= self.max {
                return None;
            }
            match self
                .open
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    return Some(ConnectionSlot {
                        gauge: Arc::clone(self),
                    })
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

/// An admitted connection's slot in the gauge; dropping it is the
/// release. Held by the transport for the connection's whole lifetime.
#[derive(Debug)]
pub(crate) struct ConnectionSlot {
    gauge: Arc<ConnectionGauge>,
}

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.gauge.open.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A cursor's service-wide identity: (session id, cursor id).
type CursorKey = (u64, u64);

/// One open cursor's shared lifecycle state: its expiry deadline and
/// its admission slot. The *stream* stays in the owning session (it is
/// not `Sync`); everything another thread may need to act on lives
/// here.
#[derive(Debug)]
struct DeadlineEntry {
    deadline: Instant,
    _slot: AdmissionSlot,
}

/// How many mutex stripes [`SharedDeadlines`] spreads its entries
/// over. Every session's per-command sweep and every transport tick
/// takes these locks; 16 stripes keeps a hot multi-session service
/// from serializing on one map mutex while staying cheap to scan in
/// the full reap.
const DEADLINE_SHARDS: usize = 16;

/// The service-level deadline map: every open cursor across every
/// session, keyed by [`CursorKey`] and striped over
/// [`DEADLINE_SHARDS`] independent mutexes (shard chosen by key hash),
/// so concurrent sessions touching disjoint cursors rarely contend.
/// Removing an entry *is* releasing the admission slot (the slot guard
/// drops with it) — which is what lets admission and the transport
/// reap a silent session's cursors without touching its streams.
#[derive(Debug)]
struct SharedDeadlines {
    shards: Vec<Mutex<HashMap<CursorKey, DeadlineEntry>>>,
}

impl Default for SharedDeadlines {
    fn default() -> Self {
        SharedDeadlines {
            shards: (0..DEADLINE_SHARDS).map(|_| Mutex::default()).collect(),
        }
    }
}

impl SharedDeadlines {
    /// The stripe holding `key`: Fibonacci-hash both halves so
    /// sequentially allocated session/cursor ids spread over shards
    /// instead of clustering in one.
    fn shard(&self, key: CursorKey) -> &Mutex<HashMap<CursorKey, DeadlineEntry>> {
        let h = (key.0.rotate_left(32) ^ key.1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize % DEADLINE_SHARDS]
    }

    fn insert(&self, key: CursorKey, deadline: Instant, slot: AdmissionSlot) {
        let shard = self.shard(key);
        shard.lock().unwrap_or_else(PoisonError::into_inner).insert(
            key,
            DeadlineEntry {
                deadline,
                _slot: slot,
            },
        );
    }

    /// Extend `key`'s deadline; false when the entry is gone (the
    /// cursor was reaped — the caller must treat it as expired).
    fn touch(&self, key: CursorKey, deadline: Instant) -> bool {
        let shard = self.shard(key);
        match shard
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_mut(&key)
        {
            Some(e) => {
                e.deadline = deadline;
                true
            }
            None => false,
        }
    }

    /// Remove `key`, releasing its slot; false when already reaped.
    fn remove(&self, key: CursorKey) -> bool {
        let shard = self.shard(key);
        shard
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&key)
            .is_some()
    }

    /// Drop every entry whose deadline has passed, releasing the
    /// slots. Locks one shard at a time — the sweep never holds more
    /// than one stripe, so it cannot deadlock against per-key callers.
    /// Returns how many were reaped.
    fn reap(&self, now: Instant) -> usize {
        let mut reaped = 0usize;
        for shard in &self.shards {
            let mut map = shard.lock().unwrap_or_else(PoisonError::into_inner);
            let before = map.len();
            map.retain(|_, e| now <= e.deadline);
            reaped += before - map.len();
        }
        reaped
    }

    /// The session-scoped sweep: for each of `session`'s cursor `ids`,
    /// remove its entry if the deadline has passed. Returns the ids
    /// whose streams the session must now drop, plus how many this
    /// call expired — ids whose entries were already gone were reaped
    /// (and counted) elsewhere. O(own cursors), not O(all cursors):
    /// this runs at the top of every command, so it must not scan the
    /// whole service. Each id locks only its own stripe.
    fn reap_session(&self, session: u64, ids: &[u64], now: Instant) -> (Vec<u64>, usize) {
        let mut dead = Vec::new();
        let mut expired = 0usize;
        for &c in ids {
            let key = (session, c);
            let shard = self.shard(key);
            let mut map = shard.lock().unwrap_or_else(PoisonError::into_inner);
            match map.get(&key) {
                None => dead.push(c),
                Some(e) if now > e.deadline => {
                    map.remove(&key);
                    expired += 1;
                    dead.push(c);
                }
                Some(_) => {}
            }
        }
        (dead, expired)
    }
}

/// The engine a [`Service`] serves from: one process-local [`Engine`],
/// or N hash-partitioned shards merged behind [`ShardedEngine`]. The
/// session layer — cursors, admission, deadlines, metrics — is
/// identical either way; only planning and stats sourcing dispatch.
#[derive(Clone)]
enum Backend {
    Single(Engine),
    Sharded(ShardedEngine),
}

impl Backend {
    /// Plan `cq` under `rank` into a ranked stream (through the plan
    /// cache on a single engine; through every shard's cache plus the
    /// tournament merge on a sharded one).
    fn plan(&self, cq: ConjunctiveQuery, rank: RankSpec) -> Result<RankedStream, EngineError> {
        match self {
            Backend::Single(engine) => engine.query(cq).rank_by(rank).plan(),
            Backend::Sharded(sharded) => sharded.stream(&cq, rank),
        }
    }

    /// Render the plan; a sharded backend appends its per-atom fan-out.
    fn explain(&self, cq: ConjunctiveQuery, rank: RankSpec) -> Result<String, EngineError> {
        match self {
            Backend::Single(engine) => Ok(engine.query(cq).rank_by(rank).explain()?.explain()),
            Backend::Sharded(sharded) => sharded.explain(&cq, rank),
        }
    }

    fn cache_stats(&self) -> CacheStats {
        match self {
            Backend::Single(engine) => engine.cache_stats(),
            Backend::Sharded(sharded) => sharded.cache_stats(),
        }
    }

    fn index_stats(&self) -> IndexStats {
        match self {
            Backend::Single(engine) => engine.index_stats(),
            Backend::Sharded(sharded) => sharded.index_stats(),
        }
    }

    fn shards(&self) -> usize {
        match self {
            Backend::Single(_) => 1,
            Backend::Sharded(sharded) => sharded.num_shards(),
        }
    }
}

/// The query service: a shared engine backend — single or sharded —
/// plus the service-wide admission bound and metrics.
/// `Clone + Send + Sync` — clones are handles to the same service;
/// spawn one [`Session`] per client.
#[derive(Clone)]
pub struct Service {
    backend: Backend,
    config: ServiceConfig,
    admission: Arc<Admission>,
    connections: Arc<ConnectionGauge>,
    deadlines: Arc<SharedDeadlines>,
    metrics: Arc<Metrics>,
    next_session: Arc<AtomicU64>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("config", &self.config)
            .field("open_cursors", &self.admission.open.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Service {
    /// A service over `engine` with the default
    /// [`ServiceConfig`].
    pub fn new(engine: Engine) -> Self {
        Service::with_config(engine, ServiceConfig::default())
    }

    /// A service with an explicit configuration.
    pub fn with_config(engine: Engine, config: ServiceConfig) -> Self {
        Service::from_backend(Backend::Single(engine), config)
    }

    /// A service over a [`ShardedEngine`] with the default
    /// [`ServiceConfig`]: sessions stream through the globally-ranked
    /// shard merge, `EXPLAIN` reports shard fan-out, and `STATS`
    /// aggregates per-shard cache and index counters.
    pub fn sharded(engine: ShardedEngine) -> Self {
        Service::sharded_with_config(engine, ServiceConfig::default())
    }

    /// [`Service::sharded`] with an explicit configuration.
    pub fn sharded_with_config(engine: ShardedEngine, config: ServiceConfig) -> Self {
        Service::from_backend(Backend::Sharded(engine), config)
    }

    fn from_backend(backend: Backend, config: ServiceConfig) -> Self {
        Service {
            backend,
            config,
            admission: Arc::new(Admission {
                open: AtomicUsize::new(0),
                max: config.max_open_cursors,
            }),
            connections: Arc::new(ConnectionGauge {
                open: AtomicUsize::new(0),
                max: config.max_connections,
            }),
            deadlines: Arc::new(SharedDeadlines::default()),
            metrics: Arc::new(Metrics {
                ttf_min_us: AtomicU64::new(u64::MAX),
                ..Metrics::default()
            }),
            next_session: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The underlying single-process engine (catalog updates, cache
    /// configuration) — `None` when this service fronts a sharded
    /// backend; use [`Service::sharded_engine`] there.
    pub fn engine(&self) -> Option<&Engine> {
        match &self.backend {
            Backend::Single(engine) => Some(engine),
            Backend::Sharded(_) => None,
        }
    }

    /// The underlying sharded engine — `None` on a single-engine
    /// service.
    pub fn sharded_engine(&self) -> Option<&ShardedEngine> {
        match &self.backend {
            Backend::Single(_) => None,
            Backend::Sharded(sharded) => Some(sharded),
        }
    }

    /// How many engine shards serve this service (1 for a
    /// single-engine backend).
    pub fn shards(&self) -> usize {
        self.backend.shards()
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Accept-time load shedding: try to admit one more connection.
    /// `Some(slot)` reserves a connection for as long as the slot
    /// lives (transports hold it alongside the connection state);
    /// `None` means the service is at [`ServiceConfig::max_connections`]
    /// — the transport sends one typed admission error and closes. The
    /// rejection is counted in [`ServiceStats::connections_rejected`].
    pub(crate) fn try_admit_connection(&self) -> Option<ConnectionSlot> {
        let slot = self.connections.try_acquire();
        if slot.is_none() {
            self.metrics
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
        }
        slot
    }

    /// How many connections are established right now.
    pub(crate) fn open_connections(&self) -> usize {
        self.connections.open.load(Ordering::Relaxed)
    }

    /// Open a session: the per-client unit owning its cursor registry.
    /// One session per connection (or per [`LocalClient`](crate::LocalClient)).
    pub fn session(&self) -> Session {
        Session {
            id: self.next_session.fetch_add(1, Ordering::Relaxed),
            service: self.clone(),
            cursors: HashMap::new(),
            expired: VecDeque::new(),
            next_cursor: 0,
        }
    }

    /// Sweep the shared deadline map: drop every cursor entry whose
    /// TTL has passed, releasing its admission slot immediately — the
    /// owning session need not speak. Called by admission when the
    /// service is full, by the event-loop transport on its timer tick,
    /// and by every session at the top of each command; also public
    /// for external reaper threads. Returns how many cursors were
    /// reaped.
    pub fn reap_expired_cursors(&self) -> usize {
        let reaped = self.deadlines.reap(Instant::now());
        if reaped > 0 {
            self.metrics
                .cursors_expired
                .fetch_add(reaped as u64, Ordering::Relaxed);
        }
        reaped
    }

    /// Current metrics, including the engine's plan-cache counters.
    pub fn stats(&self) -> ServiceStats {
        let m = &self.metrics;
        let count = m.ttf_count.load(Ordering::Relaxed);
        let min = m.ttf_min_us.load(Ordering::Relaxed);
        ServiceStats {
            queries: m.queries.load(Ordering::Relaxed),
            answers_served: m.answers_served.load(Ordering::Relaxed),
            pages_served: m.pages_served.load(Ordering::Relaxed),
            cursors_opened: m.cursors_opened.load(Ordering::Relaxed),
            cursors_closed: m.cursors_closed.load(Ordering::Relaxed),
            cursors_expired: m.cursors_expired.load(Ordering::Relaxed),
            admission_rejected: m.admission_rejected.load(Ordering::Relaxed),
            open_cursors: self.admission.open.load(Ordering::Relaxed),
            ttf_min_us: if count == 0 { 0 } else { min },
            ttf_mean_us: m
                .ttf_sum_us
                .load(Ordering::Relaxed)
                .checked_div(count)
                .unwrap_or(0),
            ttf_max_us: m.ttf_max_us.load(Ordering::Relaxed),
            ttf_p50_us: m.ttf_hist.percentile(0.50),
            ttf_p95_us: m.ttf_hist.percentile(0.95),
            ttf_p99_us: m.ttf_hist.percentile(0.99),
            page_p50_us: m.page_hist.percentile(0.50),
            page_p95_us: m.page_hist.percentile(0.95),
            page_p99_us: m.page_hist.percentile(0.99),
            connections_rejected: m.connections_rejected.load(Ordering::Relaxed),
            open_connections: self.connections.open.load(Ordering::Relaxed),
            cache: self.backend.cache_stats(),
            index: self.backend.index_stats(),
            shards: self.backend.shards(),
        }
    }
}

/// A live cursor's session-owned half: the stream itself. The shared
/// half — deadline and admission slot — lives in the service's
/// [`SharedDeadlines`] map under this cursor's [`CursorKey`], where
/// other threads can reap it.
struct Cursor {
    stream: RankedStream,
    /// One answer pulled ahead of the last page, so `done` is exact:
    /// a page only reports `done=false` when a further answer is
    /// proven to exist (an exactly-page-sized result must not pin a
    /// cursor and its admission slot).
    lookahead: Option<RankedAnswer>,
}

/// Pull up to `n` answers plus one lookahead. Returns the page and
/// whether the stream is now proven exhausted; a surplus answer goes
/// back into `lookahead` for the next page.
fn pull_page(
    stream: &mut RankedStream,
    lookahead: &mut Option<RankedAnswer>,
    n: usize,
) -> (Vec<RankedAnswer>, bool) {
    let mut answers = Vec::with_capacity(n.min(1024) + 1);
    answers.extend(lookahead.take());
    while answers.len() <= n {
        match stream.next() {
            Some(a) => answers.push(a),
            None => return (answers, true),
        }
    }
    *lookahead = answers.pop();
    (answers, false)
}

/// One client's session: a registry of live cursors over the shared
/// service. Sessions are owned by a single client (connection thread
/// or [`LocalClient`](crate::LocalClient)); the heavy state — prepared
/// queries, the plan cache, metrics — lives in the shared [`Service`].
pub struct Session {
    /// Service-wide unique id; the session half of every [`CursorKey`]
    /// this session registers in the shared deadline map.
    id: u64,
    service: Service,
    cursors: HashMap<u64, Cursor>,
    /// Ids reaped by the TTL, kept so `NEXT`/`CLOSE` on them report
    /// [`ServeError::CursorExpired`] instead of "unknown". Bounded at
    /// [`EXPIRED_MEMORY`]: a session cycling cursors under admission
    /// pressure must not accumulate memory or per-command scan cost —
    /// ids evicted from this window degrade to `UnknownCursor`.
    expired: VecDeque<u64>,
    next_cursor: u64,
}

/// How many reaped cursor ids a session remembers for the typed
/// `CursorExpired` reply (oldest evicted first).
const EXPIRED_MEMORY: usize = 1024;

impl Session {
    /// Parse and run one command.
    pub fn execute(&mut self, input: &str) -> Result<Response, ServeError> {
        let cmd = parse(input)?;
        self.run(cmd)
    }

    /// Run an already-parsed command.
    pub fn run(&mut self, cmd: Command) -> Result<Response, ServeError> {
        self.reap_expired();
        match cmd {
            Command::Select(stmt) => self.select(stmt),
            Command::Explain(stmt) => {
                let text = self.service.backend.explain(stmt.to_cq(), stmt.rank)?;
                Ok(Response::Explained(text))
            }
            Command::Next { count, cursor } => self.next(count, cursor),
            Command::Close { cursor } => {
                if self.cursors.remove(&cursor).is_some() {
                    if !self.service.deadlines.remove((self.id, cursor)) {
                        // Reaped between our sweep and now (a racing
                        // admission pass): the slot is already free
                        // and counted expired.
                        self.remember_expired(cursor);
                        return Err(ServeError::CursorExpired { cursor });
                    }
                    self.service
                        .metrics
                        .cursors_closed
                        .fetch_add(1, Ordering::Relaxed);
                    Ok(Response::Closed { cursor })
                } else if self.expired.contains(&cursor) {
                    // Consistent with NEXT: a timed-out cursor reports
                    // *expired*, not unknown.
                    Err(ServeError::CursorExpired { cursor })
                } else {
                    Err(ServeError::UnknownCursor { cursor })
                }
            }
            Command::Stats => Ok(Response::Stats(Box::new(self.service.stats()))),
        }
    }

    /// Streams this session holds open right now.
    pub fn open_cursors(&self) -> usize {
        self.cursors.len()
    }

    /// Record a reaped cursor id for the typed `CursorExpired` reply,
    /// bounded at [`EXPIRED_MEMORY`] (oldest forgotten first).
    fn remember_expired(&mut self, cursor: u64) {
        if self.expired.len() == EXPIRED_MEMORY {
            self.expired.pop_front();
        }
        self.expired.push_back(cursor);
    }

    fn select(&mut self, stmt: crate::ast::SelectStmt) -> Result<Response, ServeError> {
        let metrics = Arc::clone(&self.service.metrics);
        let slot = match self.service.admission.try_acquire() {
            Some(slot) => slot,
            None => {
                // Admission consults the shared deadline map: a full
                // service first reaps expired cursors — releasing
                // slots a silent session would otherwise pin — then
                // retries once before rejecting.
                self.service.reap_expired_cursors();
                self.service.admission.try_acquire().ok_or_else(|| {
                    metrics.admission_rejected.fetch_add(1, Ordering::Relaxed);
                    ServeError::AdmissionRejected {
                        open: self.service.admission.open.load(Ordering::Relaxed),
                        max: self.service.admission.max,
                    }
                })?
            }
        };
        let page_size = stmt.limit.unwrap_or(self.service.config.default_page);
        let started = Instant::now();
        // Prepared through the engine's plan cache (every shard's, on a
        // sharded backend): repeated SELECTs of one query shape share
        // preprocessing across all sessions.
        let mut stream = self.service.backend.plan(stmt.to_cq(), stmt.rank)?;
        let mut lookahead = None;
        let (answers, done) = pull_page(&mut stream, &mut lookahead, page_size);
        if !answers.is_empty() {
            metrics.record_ttf(elapsed_us(started));
        }
        metrics.record_page(elapsed_us(started));
        metrics.queries.fetch_add(1, Ordering::Relaxed);
        metrics.pages_served.fetch_add(1, Ordering::Relaxed);
        metrics
            .answers_served
            .fetch_add(answers.len() as u64, Ordering::Relaxed);
        if done {
            // Exhausted in one page: no cursor, the slot frees now.
            return Ok(Response::Page(Page {
                cursor: None,
                answers,
                done: true,
            }));
        }
        let id = self.next_cursor;
        self.next_cursor += 1;
        self.cursors.insert(id, Cursor { stream, lookahead });
        self.service.deadlines.insert(
            (self.id, id),
            Instant::now() + self.service.config.cursor_ttl,
            slot,
        );
        metrics.cursors_opened.fetch_add(1, Ordering::Relaxed);
        Ok(Response::Page(Page {
            cursor: Some(id),
            answers,
            done: false,
        }))
    }

    fn next(&mut self, count: usize, cursor: u64) -> Result<Response, ServeError> {
        if self.expired.contains(&cursor) {
            return Err(ServeError::CursorExpired { cursor });
        }
        let mut cur = self
            .cursors
            .remove(&cursor)
            .ok_or(ServeError::UnknownCursor { cursor })?;
        // Refresh the shared deadline *before* pulling, so a racing
        // admission reap can't free the slot mid-pull; a failed touch
        // means the cursor was reaped since our sweep — expired.
        let touched = self.service.deadlines.touch(
            (self.id, cursor),
            Instant::now() + self.service.config.cursor_ttl,
        );
        if !touched {
            self.remember_expired(cursor);
            return Err(ServeError::CursorExpired { cursor });
        }
        let started = Instant::now();
        let (answers, done) = pull_page(&mut cur.stream, &mut cur.lookahead, count);
        let metrics = Arc::clone(&self.service.metrics);
        metrics.record_page(elapsed_us(started));
        metrics.pages_served.fetch_add(1, Ordering::Relaxed);
        metrics
            .answers_served
            .fetch_add(answers.len() as u64, Ordering::Relaxed);
        if done {
            // Drained: the cursor closes itself (slot released). If
            // the entry vanished mid-pull — a sweep ran after our
            // touch — it was already counted expired; don't also
            // count it closed (opened == closed + expired must hold).
            if self.service.deadlines.remove((self.id, cursor)) {
                metrics.cursors_closed.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Response::Page(Page {
                cursor: None,
                answers,
                done: true,
            }))
        } else {
            self.cursors.insert(cursor, cur);
            Ok(Response::Page(Page {
                cursor: Some(cursor),
                answers,
                done: false,
            }))
        }
    }

    /// Reconcile with the shared deadline map at the top of every
    /// command: expire this session's own overdue cursors and drop
    /// the streams of any whose entries are already gone (reaped by
    /// a full admission pass or the transport's timer) so
    /// `NEXT`/`CLOSE` on them report [`ServeError::CursorExpired`].
    /// Deliberately session-scoped — O(own cursors) under the map
    /// lock, never a service-wide scan; global sweeps belong to the
    /// admission-full path and the event-loop tick.
    fn reap_expired(&mut self) {
        if self.cursors.is_empty() {
            return;
        }
        let ids: Vec<u64> = self.cursors.keys().copied().collect();
        let (dead, expired) = self
            .service
            .deadlines
            .reap_session(self.id, &ids, Instant::now());
        if expired > 0 {
            self.service
                .metrics
                .cursors_expired
                .fetch_add(expired as u64, Ordering::Relaxed);
        }
        for id in dead {
            // The slot was already released (and counted) when the
            // shared entry went; this only frees the stream.
            self.cursors.remove(&id);
            self.remember_expired(id);
        }
    }
}

impl Drop for Session {
    /// A dropped session closes its cursors: shared entries are
    /// removed (admission slots release with them) and counted closed.
    /// Cursors already reaped by the TTL were counted expired — not
    /// recounted here.
    fn drop(&mut self) {
        let mut closed = 0u64;
        for (&id, _) in self.cursors.iter() {
            if self.service.deadlines.remove((self.id, id)) {
                closed += 1;
            }
        }
        if closed > 0 {
            self.service
                .metrics
                .cursors_closed
                .fetch_add(closed, Ordering::Relaxed);
        }
    }
}

// One service, many sessions, any number of threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<Service>();
    assert_send::<Session>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_empty_until_recorded() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.50), 0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn histogram_percentiles_interpolate_within_buckets() {
        let h = Histogram::default();
        // 0 rounds up into bucket 0 ([1,2) µs, upper bound 1).
        h.record(0);
        assert_eq!(h.percentile(0.50), 1);
        // 90 × 1µs + 10 × 1000µs: the p50 stays in the first bucket;
        // the p95/p99 land in 1000's bucket ([512,1024)) and
        // interpolate by their rank among the 10 samples there —
        // 512 + 5·512/10 = 768 and 512 + 9·512/10 = 972, not the old
        // flat bucket bound of 1023 for both.
        for _ in 0..89 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.percentile(0.50), 1);
        assert_eq!(h.percentile(0.95), 768);
        assert_eq!(h.percentile(0.99), 972);
    }

    #[test]
    fn histogram_median_no_longer_doubled_at_bucket_lower_edge() {
        // Regression pin for the 2×-overstated median: 49 × 1µs plus
        // 51 × 512µs puts the true p50 at exactly 512µs, the *lower*
        // edge of bucket [512,1024). The old implementation reported
        // the bucket's upper bound, 1023µs — almost exactly double.
        // Interpolation lands one rank into the 51-sample bucket:
        // 512 + 1·512/51 = 522.
        let h = Histogram::default();
        for _ in 0..49 {
            h.record(1);
        }
        for _ in 0..51 {
            h.record(512);
        }
        assert_eq!(h.percentile(0.50), 522);
        assert!(h.percentile(0.50) < 1023, "upper-bound report was ~2× off");
    }

    #[test]
    fn histogram_uniform_spread_interpolates_midpoint() {
        // 512 samples uniformly covering [512,1024) — the assumption
        // interpolation makes — put the p50 at the bucket midpoint.
        let h = Histogram::default();
        for us in 512..1024 {
            h.record(us);
        }
        assert_eq!(h.percentile(0.50), 768);
    }

    #[test]
    fn histogram_tail_bucket_absorbs_huge_samples() {
        let h = Histogram::default();
        h.record(u64::MAX);
        let bound = Histogram::upper_bound(HIST_BUCKETS - 1);
        assert_eq!(h.percentile(0.50), bound);
        assert!(bound > 60 * 60 * 1_000_000, "tail covers > an hour in µs");
    }

    #[test]
    fn sharded_deadlines_spread_and_account_exactly() {
        let admission = Arc::new(Admission {
            open: AtomicUsize::new(0),
            max: 1024,
        });
        let deadlines = SharedDeadlines::default();
        let now = Instant::now();
        let far = now + Duration::from_secs(60);
        // 64 entries over 8 sessions; odd-parity keys get an already-
        // due deadline, even-parity ones a far-future one.
        for session in 0..8u64 {
            for cursor in 0..8u64 {
                let slot = admission.try_acquire().expect("slot");
                let deadline = if (session + cursor) % 2 == 0 {
                    far
                } else {
                    now
                };
                deadlines.insert((session, cursor), deadline, slot);
            }
        }
        assert_eq!(admission.open.load(Ordering::Relaxed), 64);
        // The hash actually stripes: more than one shard is occupied.
        let occupied = deadlines
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap_or_else(PoisonError::into_inner).is_empty())
            .count();
        assert!(occupied > 1, "all entries landed in one shard");
        // touch rescues a due entry; remove releases exactly one slot
        // and is idempotent-false afterwards.
        assert!(deadlines.touch((0, 1), far));
        assert!(deadlines.remove((0, 0)));
        assert!(!deadlines.remove((0, 0)));
        assert_eq!(admission.open.load(Ordering::Relaxed), 63);
        // Reap: exactly the 32 due entries minus the touched one go,
        // and every reaped entry returns its admission slot.
        let reaped = deadlines.reap(now + Duration::from_millis(1));
        assert_eq!(reaped, 31);
        assert_eq!(admission.open.load(Ordering::Relaxed), 32);
        // The session-scoped sweep reports the reaped ids as dead
        // without double-counting them as expired.
        let ids: Vec<u64> = (0..8).collect();
        let (dead, expired) = deadlines.reap_session(1, &ids, now + Duration::from_millis(1));
        assert_eq!(expired, 0);
        assert_eq!(dead, vec![0, 2, 4, 6]);
    }

    #[test]
    fn accept_shedding_rejects_and_counts() {
        use crate::tcp::{Server, TcpClient, Transport, TransportConfig};
        for transport in [Transport::ThreadPerConn, Transport::EventLoop] {
            let service = Service::with_config(
                crate::tests_engine(),
                ServiceConfig {
                    max_connections: 1,
                    ..ServiceConfig::default()
                },
            );
            let mut server = Server::bind_with(
                service.clone(),
                "127.0.0.1:0",
                TransportConfig {
                    transport,
                    workers: 2,
                    ..TransportConfig::default()
                },
            )
            .expect("bind");
            let mut first = TcpClient::connect(server.addr()).expect("connect");
            let reply = first
                .send("SELECT R(a,b) RANK BY sum LIMIT 1;")
                .expect("select");
            assert!(reply.starts_with("OK"), "{transport:?}: {reply}");
            assert_eq!(service.stats().open_connections, 1, "{transport:?}");
            // The second connection is shed at accept time with one
            // typed reply, before any session state exists.
            let mut second = TcpClient::connect(server.addr()).expect("connect");
            let reply = second.read_reply().expect("reject block");
            assert_eq!(
                reply, "ERR admission: connections 1 of 1 open\nEND\n",
                "{transport:?}"
            );
            let stats = service.stats();
            assert_eq!(stats.connections_rejected, 1, "{transport:?}");
            assert_eq!(stats.open_connections, 1, "{transport:?}");
            server.shutdown();
        }
    }

    #[test]
    fn stats_surface_index_catalog_counters() {
        use anyk_storage::{Catalog, RelationBuilder, Schema};
        let mut catalog = Catalog::new();
        for name in ["R", "S", "T"] {
            let mut b = RelationBuilder::new(Schema::new(["x", "y"]));
            for i in 0..4i64 {
                for j in 0..4i64 {
                    if i != j {
                        b.push_ints(&[i, j], 0.1 * (i * 4 + j + 1) as f64);
                    }
                }
            }
            catalog.register(name, b.finish());
        }
        let service = Service::new(Engine::new(catalog));
        let mut client = crate::LocalClient::new(&service);
        // A cyclic query routes through the shared index catalog.
        let reply = client.send("SELECT R(x,y), S(y,z), T(z,x) RANK BY sum LIMIT 1;");
        assert!(reply.starts_with("OK"), "{reply}");
        let stats = service.stats();
        assert!(stats.index.builds > 0, "triangle prepare builds tries");
        assert!(stats.index.resident_bytes > 0);
        let stats_reply = client.send("STATS");
        for key in [
            "index_hits",
            "index_misses",
            "index_builds",
            "index_evictions",
            "index_resident_bytes",
            "index_entries",
            "index_capacity_bytes",
            "open_connections",
            "connections_rejected",
        ] {
            assert!(
                stats_reply.contains(&format!("INFO {key}=")),
                "STATS missing {key}: {stats_reply}"
            );
        }
    }

    #[test]
    fn shared_deadline_map_reaps_only_past_deadlines() {
        let service = Service::new(crate::tests_engine());
        let mut session = service.session();
        let resp = session
            .execute("SELECT R(a,b) LIMIT 1;")
            .expect("select opens a cursor");
        let Response::Page(page) = resp else { panic!() };
        assert!(page.cursor.is_some());
        assert_eq!(service.stats().open_cursors, 1);
        // The deadline (default 60 s) is in the future: no reap.
        assert_eq!(service.reap_expired_cursors(), 0);
        assert_eq!(service.stats().open_cursors, 1);
    }
}
