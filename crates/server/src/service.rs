//! The session layer: a [`Service`] wraps a shared
//! [`Engine`] and turns parsed [`Command`]s into paginated responses
//! over live ranked streams.
//!
//! * **Cursors** — a `SELECT` opens a [`RankedStream`] over the
//!   engine's (cached) prepared state, serves the first page, and
//!   registers a cursor for `NEXT` pulls; cursors expire after a TTL
//!   and are reaped lazily on the owning session's next command.
//! * **Admission control** — a service-wide semaphore bounds how many
//!   streams may be open at once across all sessions; beyond it,
//!   `SELECT` fails with a typed [`ServeError::AdmissionRejected`]
//!   instead of letting per-stream heap state grow without bound.
//! * **Metrics** — per-query time-to-first-answer, answers served,
//!   cursor lifecycle counts, and the engine's plan-cache counters,
//!   all surfaced through the `STATS` command.

use crate::ast::Command;
use crate::parser::{parse, ParseError};
use anyk_engine::{CacheStats, Engine, EngineError, RankedAnswer, RankedStream};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Maximum number of concurrently open cursors (streams) across
    /// all sessions — the admission-control bound.
    pub max_open_cursors: usize,
    /// Idle time after which a cursor expires. Reaping is **lazy**:
    /// streams are session-owned (not `Sync`), so expired cursors are
    /// only dropped when the owning session runs its next command or
    /// disconnects — a session that goes silent while holding cursors
    /// keeps its admission slots until then. Size
    /// [`max_open_cursors`](ServiceConfig::max_open_cursors)
    /// accordingly.
    pub cursor_ttl: Duration,
    /// Page size when a `SELECT` carries no `LIMIT`.
    pub default_page: usize,
}

impl Default for ServiceConfig {
    /// 64 concurrent streams, 60 s cursor TTL, 10-answer pages.
    fn default() -> Self {
        ServiceConfig {
            max_open_cursors: 64,
            cursor_ttl: Duration::from_secs(60),
            default_page: 10,
        }
    }
}

/// Why a command could not be served. Parse and engine failures are
/// wrapped; the session-layer failures (cursor lifecycle, admission)
/// are typed here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The command text did not parse.
    Parse(ParseError),
    /// The engine rejected the query (unknown relation, arity, ...).
    Engine(EngineError),
    /// `NEXT`/`CLOSE` on a cursor id this session never opened (or
    /// already closed/drained).
    UnknownCursor {
        /// The offending id.
        cursor: u64,
    },
    /// `NEXT` on a cursor that idled past the TTL and was reaped.
    CursorExpired {
        /// The expired id.
        cursor: u64,
    },
    /// `SELECT` rejected because the service is at its concurrent-
    /// stream bound.
    AdmissionRejected {
        /// Streams currently open.
        open: usize,
        /// The configured bound.
        max: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Parse(e) => write!(f, "parse: {e}"),
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::UnknownCursor { cursor } => write!(f, "unknown cursor {cursor}"),
            ServeError::CursorExpired { cursor } => write!(f, "cursor {cursor} expired"),
            ServeError::AdmissionRejected { open, max } => {
                write!(f, "admission rejected: {open} of {max} streams open")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Parse(e) => Some(e),
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for ServeError {
    fn from(e: ParseError) -> Self {
        ServeError::Parse(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// What a successfully served command returns.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A page of ranked answers (`SELECT` / `NEXT`).
    Page(Page),
    /// The rendered plan (`EXPLAIN`).
    Explained(String),
    /// Service metrics (`STATS`).
    Stats(ServiceStats),
    /// Acknowledgement of `CLOSE`.
    Closed {
        /// The closed cursor id.
        cursor: u64,
    },
}

/// One page of answers.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// The cursor to `NEXT` on for more answers — `None` when the
    /// stream is drained (drained cursors close themselves).
    pub cursor: Option<u64>,
    /// The answers, in ranking order, continuing where the previous
    /// page stopped.
    pub answers: Vec<RankedAnswer>,
    /// True when the stream is exhausted: no further page exists.
    /// Exact — the session pulls one answer of lookahead, so a result
    /// set that ends exactly at a page boundary still reports `done`
    /// (and holds no cursor).
    pub done: bool,
}

/// A snapshot of the service-level metrics (the `STATS` command).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceStats {
    /// `SELECT`s served (successful plans, including empty results).
    pub queries: u64,
    /// Total answers emitted across all pages.
    pub answers_served: u64,
    /// Pages served (`SELECT` first pages + `NEXT` pulls).
    pub pages_served: u64,
    /// Cursors ever registered.
    pub cursors_opened: u64,
    /// Cursors closed by `CLOSE`, by draining, or by session drop.
    pub cursors_closed: u64,
    /// Cursors reaped by the TTL.
    pub cursors_expired: u64,
    /// `SELECT`s refused by admission control.
    pub admission_rejected: u64,
    /// Streams open right now (the admission gauge).
    pub open_cursors: usize,
    /// Minimum observed time-to-first-answer, in microseconds.
    pub ttf_min_us: u64,
    /// Mean observed time-to-first-answer, in microseconds.
    pub ttf_mean_us: u64,
    /// Maximum observed time-to-first-answer, in microseconds.
    pub ttf_max_us: u64,
    /// The engine's plan-cache counters (hits/misses/evictions/...).
    pub cache: CacheStats,
}

/// Cumulative counters behind [`ServiceStats`] — lock-free, shared by
/// every session and every clone of the service.
#[derive(Debug, Default)]
struct Metrics {
    queries: AtomicU64,
    answers_served: AtomicU64,
    pages_served: AtomicU64,
    cursors_opened: AtomicU64,
    cursors_closed: AtomicU64,
    cursors_expired: AtomicU64,
    admission_rejected: AtomicU64,
    ttf_count: AtomicU64,
    ttf_sum_us: AtomicU64,
    ttf_min_us: AtomicU64,
    ttf_max_us: AtomicU64,
}

impl Metrics {
    fn record_ttf(&self, us: u64) {
        // Sub-microsecond first pages round up to 1 µs on both bounds
        // (an asymmetric clamp could report min > max).
        let us = us.max(1);
        self.ttf_count.fetch_add(1, Ordering::Relaxed);
        self.ttf_sum_us.fetch_add(us, Ordering::Relaxed);
        self.ttf_min_us.fetch_min(us, Ordering::Relaxed);
        self.ttf_max_us.fetch_max(us, Ordering::Relaxed);
    }
}

/// The admission-control semaphore: a counter bounded by
/// `max_open_cursors`, acquired per open stream and released by the
/// guard's `Drop` (so a dropped session can never leak slots).
#[derive(Debug)]
struct Admission {
    open: AtomicUsize,
    max: usize,
}

impl Admission {
    /// Try to take a slot; `None` when the service is at its bound.
    fn try_acquire(self: &Arc<Self>) -> Option<AdmissionSlot> {
        let mut cur = self.open.load(Ordering::Relaxed);
        loop {
            if cur >= self.max {
                return None;
            }
            match self
                .open
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    return Some(AdmissionSlot {
                        admission: Arc::clone(self),
                    })
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

#[derive(Debug)]
struct AdmissionSlot {
    admission: Arc<Admission>,
}

impl Drop for AdmissionSlot {
    fn drop(&mut self) {
        self.admission.open.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The query service: a shared [`Engine`] plus the service-wide
/// admission bound and metrics. `Clone + Send + Sync` — clones are
/// handles to the same service; spawn one [`Session`] per client.
#[derive(Clone)]
pub struct Service {
    engine: Engine,
    config: ServiceConfig,
    admission: Arc<Admission>,
    metrics: Arc<Metrics>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("config", &self.config)
            .field("open_cursors", &self.admission.open.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Service {
    /// A service over `engine` with the default
    /// [`ServiceConfig`].
    pub fn new(engine: Engine) -> Self {
        Service::with_config(engine, ServiceConfig::default())
    }

    /// A service with an explicit configuration.
    pub fn with_config(engine: Engine, config: ServiceConfig) -> Self {
        Service {
            engine,
            config,
            admission: Arc::new(Admission {
                open: AtomicUsize::new(0),
                max: config.max_open_cursors,
            }),
            metrics: Arc::new(Metrics {
                ttf_min_us: AtomicU64::new(u64::MAX),
                ..Metrics::default()
            }),
        }
    }

    /// The underlying engine (catalog updates, cache configuration).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Open a session: the per-client unit owning its cursor registry.
    /// One session per connection (or per [`LocalClient`](crate::LocalClient)).
    pub fn session(&self) -> Session {
        Session {
            service: self.clone(),
            cursors: HashMap::new(),
            expired: Vec::new(),
            next_cursor: 0,
        }
    }

    /// Current metrics, including the engine's plan-cache counters.
    pub fn stats(&self) -> ServiceStats {
        let m = &self.metrics;
        let count = m.ttf_count.load(Ordering::Relaxed);
        let min = m.ttf_min_us.load(Ordering::Relaxed);
        ServiceStats {
            queries: m.queries.load(Ordering::Relaxed),
            answers_served: m.answers_served.load(Ordering::Relaxed),
            pages_served: m.pages_served.load(Ordering::Relaxed),
            cursors_opened: m.cursors_opened.load(Ordering::Relaxed),
            cursors_closed: m.cursors_closed.load(Ordering::Relaxed),
            cursors_expired: m.cursors_expired.load(Ordering::Relaxed),
            admission_rejected: m.admission_rejected.load(Ordering::Relaxed),
            open_cursors: self.admission.open.load(Ordering::Relaxed),
            ttf_min_us: if count == 0 { 0 } else { min },
            ttf_mean_us: m
                .ttf_sum_us
                .load(Ordering::Relaxed)
                .checked_div(count)
                .unwrap_or(0),
            ttf_max_us: m.ttf_max_us.load(Ordering::Relaxed),
            cache: self.engine.cache_stats(),
        }
    }
}

/// A live cursor: the stream plus its lifecycle state.
struct Cursor {
    stream: RankedStream,
    /// One answer pulled ahead of the last page, so `done` is exact:
    /// a page only reports `done=false` when a further answer is
    /// proven to exist (an exactly-page-sized result must not pin a
    /// cursor and its admission slot).
    lookahead: Option<RankedAnswer>,
    last_used: Instant,
    /// Held while the cursor is open; dropping it releases the
    /// service-wide admission slot.
    _slot: AdmissionSlot,
}

/// Pull up to `n` answers plus one lookahead. Returns the page and
/// whether the stream is now proven exhausted; a surplus answer goes
/// back into `lookahead` for the next page.
fn pull_page(
    stream: &mut RankedStream,
    lookahead: &mut Option<RankedAnswer>,
    n: usize,
) -> (Vec<RankedAnswer>, bool) {
    let mut answers = Vec::with_capacity(n.min(1024) + 1);
    answers.extend(lookahead.take());
    while answers.len() <= n {
        match stream.next() {
            Some(a) => answers.push(a),
            None => return (answers, true),
        }
    }
    *lookahead = answers.pop();
    (answers, false)
}

/// One client's session: a registry of live cursors over the shared
/// service. Sessions are owned by a single client (connection thread
/// or [`LocalClient`](crate::LocalClient)); the heavy state — prepared
/// queries, the plan cache, metrics — lives in the shared [`Service`].
pub struct Session {
    service: Service,
    cursors: HashMap<u64, Cursor>,
    /// Ids reaped by the TTL, kept so `NEXT`/`CLOSE` on them report
    /// [`ServeError::CursorExpired`] instead of "unknown".
    expired: Vec<u64>,
    next_cursor: u64,
}

impl Session {
    /// Parse and run one command.
    pub fn execute(&mut self, input: &str) -> Result<Response, ServeError> {
        let cmd = parse(input)?;
        self.run(cmd)
    }

    /// Run an already-parsed command.
    pub fn run(&mut self, cmd: Command) -> Result<Response, ServeError> {
        self.reap_expired();
        match cmd {
            Command::Select(stmt) => self.select(stmt),
            Command::Explain(stmt) => {
                let plan = self
                    .service
                    .engine
                    .query(stmt.to_cq())
                    .rank_by(stmt.rank)
                    .explain()?;
                Ok(Response::Explained(plan.explain()))
            }
            Command::Next { count, cursor } => self.next(count, cursor),
            Command::Close { cursor } => {
                if self.cursors.remove(&cursor).is_some() {
                    self.service
                        .metrics
                        .cursors_closed
                        .fetch_add(1, Ordering::Relaxed);
                    Ok(Response::Closed { cursor })
                } else if self.expired.contains(&cursor) {
                    // Consistent with NEXT: a timed-out cursor reports
                    // *expired*, not unknown.
                    Err(ServeError::CursorExpired { cursor })
                } else {
                    Err(ServeError::UnknownCursor { cursor })
                }
            }
            Command::Stats => Ok(Response::Stats(self.service.stats())),
        }
    }

    /// Streams this session holds open right now.
    pub fn open_cursors(&self) -> usize {
        self.cursors.len()
    }

    fn select(&mut self, stmt: crate::ast::SelectStmt) -> Result<Response, ServeError> {
        let metrics = Arc::clone(&self.service.metrics);
        let slot = self.service.admission.try_acquire().ok_or_else(|| {
            metrics.admission_rejected.fetch_add(1, Ordering::Relaxed);
            ServeError::AdmissionRejected {
                open: self.service.admission.open.load(Ordering::Relaxed),
                max: self.service.admission.max,
            }
        })?;
        let page_size = stmt.limit.unwrap_or(self.service.config.default_page);
        let started = Instant::now();
        // Prepared through the engine's plan cache: repeated SELECTs of
        // one query shape share preprocessing across all sessions.
        let mut stream = self
            .service
            .engine
            .query(stmt.to_cq())
            .rank_by(stmt.rank)
            .plan()?;
        let mut lookahead = None;
        let (answers, done) = pull_page(&mut stream, &mut lookahead, page_size);
        if !answers.is_empty() {
            metrics.record_ttf(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        }
        metrics.queries.fetch_add(1, Ordering::Relaxed);
        metrics.pages_served.fetch_add(1, Ordering::Relaxed);
        metrics
            .answers_served
            .fetch_add(answers.len() as u64, Ordering::Relaxed);
        if done {
            // Exhausted in one page: no cursor, the slot frees now.
            return Ok(Response::Page(Page {
                cursor: None,
                answers,
                done: true,
            }));
        }
        let id = self.next_cursor;
        self.next_cursor += 1;
        self.cursors.insert(
            id,
            Cursor {
                stream,
                lookahead,
                last_used: Instant::now(),
                _slot: slot,
            },
        );
        metrics.cursors_opened.fetch_add(1, Ordering::Relaxed);
        Ok(Response::Page(Page {
            cursor: Some(id),
            answers,
            done: false,
        }))
    }

    fn next(&mut self, count: usize, cursor: u64) -> Result<Response, ServeError> {
        if self.expired.contains(&cursor) {
            return Err(ServeError::CursorExpired { cursor });
        }
        let mut cur = self
            .cursors
            .remove(&cursor)
            .ok_or(ServeError::UnknownCursor { cursor })?;
        let (answers, done) = pull_page(&mut cur.stream, &mut cur.lookahead, count);
        let metrics = Arc::clone(&self.service.metrics);
        metrics.pages_served.fetch_add(1, Ordering::Relaxed);
        metrics
            .answers_served
            .fetch_add(answers.len() as u64, Ordering::Relaxed);
        if done {
            // Drained: the cursor closes itself (slot released).
            metrics.cursors_closed.fetch_add(1, Ordering::Relaxed);
            Ok(Response::Page(Page {
                cursor: None,
                answers,
                done: true,
            }))
        } else {
            cur.last_used = Instant::now();
            self.cursors.insert(cursor, cur);
            Ok(Response::Page(Page {
                cursor: Some(cursor),
                answers,
                done: false,
            }))
        }
    }

    /// Drop cursors that idled past the TTL. Lazy: runs at the top of
    /// every command on the owning session (cursors are session-owned,
    /// so nothing else can touch them).
    fn reap_expired(&mut self) {
        let ttl = self.service.config.cursor_ttl;
        let now = Instant::now();
        let dead: Vec<u64> = self
            .cursors
            .iter()
            .filter(|(_, c)| now.duration_since(c.last_used) > ttl)
            .map(|(&id, _)| id)
            .collect();
        for id in dead {
            self.cursors.remove(&id);
            self.expired.push(id);
            self.service
                .metrics
                .cursors_expired
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for Session {
    /// A dropped session closes its cursors (admission slots release
    /// via the guards) and counts them as closed.
    fn drop(&mut self) {
        let n = self.cursors.len() as u64;
        if n > 0 {
            self.service
                .metrics
                .cursors_closed
                .fetch_add(n, Ordering::Relaxed);
        }
    }
}

// One service, many sessions, any number of threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<Service>();
    assert_send::<Session>();
};
