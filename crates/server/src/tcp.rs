//! The TCP transport: a line-oriented listener with one thread (and
//! one [`Session`](crate::Session)) per connection — `std::net` only,
//! no external dependencies.
//!
//! Clients send one command per line and read one `END`-terminated
//! block per command (see [`crate::wire`] for the framing). Closing
//! the connection closes the session, which closes its cursors and
//! releases their admission slots.

use crate::service::Service;
use crate::wire::respond;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP server: accept loop plus per-connection threads.
/// Dropping the handle (or calling [`shutdown`](Server::shutdown))
/// stops accepting; established connections run to completion on
/// their own threads.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port)
    /// and start accepting. Each connection gets its own thread and
    /// its own session over the shared service.
    pub fn bind(service: Service, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(conn) = conn else { continue };
                let service = service.clone();
                std::thread::spawn(move || serve_connection(&service, conn));
            }
        });
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (the actual port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run one connection: read command lines, write reply blocks. Blank
/// lines are ignored; I/O errors end the connection (and the session).
fn serve_connection(service: &Service, conn: TcpStream) {
    let mut session = service.session();
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut writer = conn;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = respond(&mut session, &line);
        if writer.write_all(reply.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
    }
}

/// A minimal blocking TCP client for the line protocol — used by the
/// integration tests and the E16 bench to drive a [`Server`] exactly
/// like an external process would.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpClient {
    /// Connect to a [`Server`].
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpClient {
            reader,
            writer: stream,
        })
    }

    /// Send one command line and read the full `END`-terminated reply
    /// block (bytes as the server wrote them).
    pub fn send(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut block = String::new();
        loop {
            let mut reply_line = String::new();
            let n = self.reader.read_line(&mut reply_line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-reply",
                ));
            }
            let done = reply_line.trim_end() == "END";
            block.push_str(&reply_line);
            if done {
                return Ok(block);
            }
        }
    }
}
