//! The TCP transports: a line-oriented server over `std::net` with two
//! interchangeable accept architectures behind one [`Server`] type —
//! no external dependencies (the readiness syscalls come from the
//! in-tree [`polling`] shim).
//!
//! * [`Transport::EventLoop`] (the default): one nonblocking
//!   readiness loop plus a worker pool — see [`crate::event_loop`] for
//!   the threading model and backpressure rules. Scales to thousands
//!   of mostly-idle connections.
//! * [`Transport::ThreadPerConn`]: the classic blocking loop, one
//!   thread (and one [`Session`](crate::Session)) per connection.
//!   Simple, great for a handful of clients, kept as the portable
//!   fallback and as the differential baseline the tests compare the
//!   event loop against.
//!
//! Clients send one command per line and read one `END`-terminated
//! block per command (see [`crate::wire`] for the encoding and
//! [`crate::frame`] for the line framing — both transports share both,
//! so their bytes are identical by construction). Closing the
//! connection closes the session, which closes its cursors and
//! releases their admission slots.

use crate::event_loop;
use crate::frame::{encode_frame_error, LineFramer};
use crate::service::{ConnectionSlot, Service};
use crate::wire::{encode_connection_rejected, respond};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Why [`Server::bind`] / [`Server::bind_with`] could not start.
///
/// Binding fails either on the socket (wrapped [`std::io::Error`]) or
/// at worker-pool validation time, *before* any thread is spawned —
/// a zero-sized pool would accept connections and then never execute
/// a command, so it is rejected up front with a typed error instead
/// of being silently "fixed" to some clamp.
#[derive(Debug)]
pub enum BindError {
    /// Socket-level failure (bind, local_addr, nonblocking setup, ...).
    Io(std::io::Error),
    /// [`crate::ServiceConfig::workers`] was `Some(0)` — an explicit
    /// request for a pool that could never serve a command.
    InvalidWorkers,
    /// `ANYK_SERVE_WORKERS` was set but is not a positive integer.
    InvalidWorkersEnv {
        /// The offending environment value.
        value: String,
    },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::Io(e) => write!(f, "bind: {e}"),
            BindError::InvalidWorkers => {
                write!(f, "ServiceConfig::workers must be at least 1 (got 0)")
            }
            BindError::InvalidWorkersEnv { value } => write!(
                f,
                "ANYK_SERVE_WORKERS must be a positive integer, got `{value}`"
            ),
        }
    }
}

impl std::error::Error for BindError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BindError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BindError {
    fn from(e: std::io::Error) -> Self {
        BindError::Io(e)
    }
}

/// Which accept architecture a [`Server`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Readiness event loop + worker pool (Unix; the default there).
    EventLoop,
    /// One blocking thread per connection (every platform).
    ThreadPerConn,
}

impl Transport {
    /// The transport `ANYK_SERVE_TRANSPORT` selects: `threaded` for
    /// [`Transport::ThreadPerConn`], `event` (or unset) for
    /// [`Transport::EventLoop`]. Non-Unix platforms always get the
    /// threaded transport.
    pub fn from_env() -> Transport {
        if cfg!(not(unix)) {
            return Transport::ThreadPerConn;
        }
        match std::env::var("ANYK_SERVE_TRANSPORT").as_deref() {
            Ok("threaded") => Transport::ThreadPerConn,
            _ => Transport::EventLoop,
        }
    }
}

/// Transport tuning for [`Server::bind_with`].
#[derive(Debug, Clone, Copy)]
pub struct TransportConfig {
    /// Accept architecture. [`TransportConfig::default`] consults
    /// `ANYK_SERVE_TRANSPORT` (see [`Transport::from_env`]) so test
    /// suites and deployments can switch transports without code
    /// changes.
    pub transport: Transport,
    /// Worker threads executing commands (event loop only). `0` means
    /// "not set here": the pool size then comes from the
    /// `ANYK_SERVE_WORKERS` environment variable, then
    /// [`crate::ServiceConfig::workers`], then auto-sizing (one worker
    /// per available core, floor 2, **no upper clamp** — an earlier
    /// revision silently capped the pool at 8, starving wide hosts).
    pub workers: usize,
    /// Longest accepted command line, in bytes; longer lines get a
    /// typed `ERR proto` reply and are discarded to the next newline
    /// (see [`crate::frame`]). Applies to both transports.
    pub max_line_len: usize,
}

impl Default for TransportConfig {
    /// Env-selected transport, auto worker count, 64 KiB line bound.
    fn default() -> Self {
        TransportConfig {
            transport: Transport::from_env(),
            workers: 0,
            max_line_len: 64 * 1024,
        }
    }
}

impl TransportConfig {
    fn resolved_workers(&self, service_workers: Option<usize>) -> Result<usize, BindError> {
        let env = std::env::var("ANYK_SERVE_WORKERS").ok();
        resolve_workers(self.workers, env.as_deref(), service_workers)
    }
}

/// Worker-pool sizing, by precedence: an explicit
/// [`TransportConfig::workers`], then `ANYK_SERVE_WORKERS`, then
/// [`crate::ServiceConfig::workers`], then one worker per available
/// core with a floor of 2 (so a busy command never starves the loop on
/// a single-core box) and **no upper clamp**. Zero anywhere explicit is
/// a [`BindError`], not a silent correction.
fn resolve_workers(
    explicit: usize,
    env: Option<&str>,
    service_workers: Option<usize>,
) -> Result<usize, BindError> {
    if explicit > 0 {
        return Ok(explicit);
    }
    if let Some(value) = env {
        return match value.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(BindError::InvalidWorkersEnv {
                value: value.to_string(),
            }),
        };
    }
    match service_workers {
        Some(0) => Err(BindError::InvalidWorkers),
        Some(n) => Ok(n),
        None => Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .max(2)),
    }
}

/// What `shutdown` must wake and join, per transport.
enum Running {
    Threaded {
        accept_thread: Option<JoinHandle<()>>,
    },
    Event {
        poller: Arc<polling::Poller>,
        threads: Vec<JoinHandle<()>>,
    },
}

/// A running TCP server over one of the two [`Transport`]s. Dropping
/// the handle (or calling [`shutdown`](Server::shutdown)) stops the
/// server; on the event transport that also closes established
/// connections, while the threaded transport lets them run out on
/// their own threads.
///
/// ```
/// use anyk_engine::Engine;
/// use anyk_serve::{Server, Service, TcpClient, Transport, TransportConfig};
/// use anyk_storage::{Catalog, RelationBuilder, Schema};
///
/// let mut catalog = Catalog::new();
/// let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
/// r.push_ints(&[1, 10], 0.25);
/// r.push_ints(&[2, 10], 2.0);
/// catalog.register("R", r.finish());
///
/// let service = Service::new(Engine::new(catalog));
/// let config = TransportConfig {
///     transport: Transport::EventLoop, // explicit: ignore the env
///     workers: 2,
///     ..TransportConfig::default()
/// };
/// let mut server = Server::bind_with(service, "127.0.0.1:0", config).unwrap();
///
/// // Any line-oriented client works; TcpClient is the in-tree one.
/// let mut client = TcpClient::connect(server.addr()).unwrap();
/// let reply = client.send("SELECT R(a,b) RANK BY sum LIMIT 1;").unwrap();
/// assert!(reply.starts_with("OK cursor=0 rows=1 done=false\nROW 1,10 cost=0.25"));
/// server.shutdown();
/// ```
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    running: Running,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port)
    /// and start serving on the [`TransportConfig::default`] transport
    /// — the event loop, unless `ANYK_SERVE_TRANSPORT=threaded`.
    pub fn bind(service: Service, addr: &str) -> Result<Server, BindError> {
        Server::bind_with(service, addr, TransportConfig::default())
    }

    /// Bind with an explicit transport and tuning. Fails with a typed
    /// [`BindError`] on socket errors or an invalid worker-pool size
    /// (see [`TransportConfig::workers`] for the sizing precedence).
    pub fn bind_with(
        service: Service,
        addr: &str,
        config: TransportConfig,
    ) -> Result<Server, BindError> {
        // Validate the pool before touching the socket: a bad worker
        // config should fail identically whether or not the port binds.
        let workers = config.resolved_workers(service.config().workers)?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let running = match config.transport {
            Transport::EventLoop => {
                listener.set_nonblocking(true)?;
                let t = event_loop::spawn(
                    service,
                    listener,
                    Arc::clone(&stop),
                    workers,
                    config.max_line_len,
                )?;
                Running::Event {
                    poller: t.poller,
                    threads: t.threads,
                }
            }
            Transport::ThreadPerConn => {
                let accept_stop = Arc::clone(&stop);
                let max_line_len = config.max_line_len;
                let accept_thread = std::thread::spawn(move || {
                    for conn in listener.incoming() {
                        if accept_stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(mut conn) = conn else { continue };
                        // Accept-time load shedding: refuse before
                        // spawning a thread or opening a session.
                        let Some(slot) = service.try_admit_connection() else {
                            let reply = encode_connection_rejected(
                                service.open_connections(),
                                service.config().max_connections,
                            );
                            let _ = conn.write_all(reply.as_bytes());
                            continue;
                        };
                        let service = service.clone();
                        std::thread::spawn(move || {
                            serve_connection(&service, conn, max_line_len, slot);
                        });
                    }
                });
                Running::Threaded {
                    accept_thread: Some(accept_thread),
                }
            }
        };
        Ok(Server {
            addr,
            stop,
            running,
        })
    }

    /// The bound address (the actual port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the server and join its threads. Idempotent; also runs on
    /// drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        match &mut self.running {
            Running::Threaded { accept_thread } => {
                // Unblock the accept loop with a throwaway connection.
                let _ = TcpStream::connect(self.addr);
                if let Some(t) = accept_thread.take() {
                    let _ = t.join();
                }
            }
            Running::Event { poller, threads } => {
                let _ = poller.notify();
                for t in threads.drain(..) {
                    let _ = t.join();
                }
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run one connection on the threaded transport: read raw chunks
/// through the shared [`LineFramer`] (so partial lines, pipelining,
/// and the oversized-line error behave exactly like the event loop),
/// write one reply block per command. I/O errors end the connection
/// (and the session).
fn serve_connection(
    service: &Service,
    conn: TcpStream,
    max_line_len: usize,
    _slot: ConnectionSlot,
) {
    let mut session = service.session();
    // The framer does the buffering; read the socket raw.
    let Ok(mut reader) = conn.try_clone() else {
        return;
    };
    let mut writer = conn;
    let mut framer = LineFramer::new(max_line_len);
    let mut buf = [0u8; 4096];
    let mut eof = false;
    while !eof {
        match reader.read(&mut buf) {
            // Half-close without a trailing newline still serves the
            // final command (framer.finish yields the partial line).
            Ok(0) => {
                framer.finish();
                eof = true;
            }
            Ok(n) => framer.feed(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        while let Some(item) = framer.next_line() {
            let reply = match item {
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => respond(&mut session, &line),
                Err(frame_err) => encode_frame_error(&frame_err),
            };
            if writer.write_all(reply.as_bytes()).is_err() || writer.flush().is_err() {
                return;
            }
        }
    }
}

/// A minimal blocking TCP client for the line protocol — used by the
/// integration tests and the E16 bench to drive a [`Server`] exactly
/// like an external process would.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpClient {
    /// Connect to a [`Server`].
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpClient {
            reader,
            writer: stream,
        })
    }

    /// Send one command line and read the full `END`-terminated reply
    /// block (bytes as the server wrote them).
    pub fn send(&mut self, line: &str) -> std::io::Result<String> {
        self.send_raw(format!("{line}\n").as_bytes())?;
        self.read_reply()
    }

    /// Write raw bytes as-is — lets tests exercise partial lines and
    /// pipelined segments exactly as they'd arrive off the wire.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Read one `END`-terminated reply block.
    pub fn read_reply(&mut self) -> std::io::Result<String> {
        let mut block = String::new();
        loop {
            let mut reply_line = String::new();
            let n = self.reader.read_line(&mut reply_line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-reply",
                ));
            }
            let done = crate::wire::is_terminator(&reply_line);
            block.push_str(&reply_line);
            if done {
                return Ok(block);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use anyk_engine::Engine;
    use anyk_storage::Catalog;

    #[test]
    fn worker_resolution_precedence() {
        // Explicit transport config wins over everything.
        assert_eq!(resolve_workers(3, Some("7"), Some(5)).unwrap(), 3);
        // Then the environment...
        assert_eq!(resolve_workers(0, Some("7"), Some(5)).unwrap(), 7);
        // ...then the service config...
        assert_eq!(resolve_workers(0, None, Some(5)).unwrap(), 5);
        // ...then auto: per-core with a floor of 2.
        let auto = resolve_workers(0, None, None).unwrap();
        assert!(auto >= 2);
    }

    #[test]
    fn worker_resolution_has_no_upper_clamp() {
        // The old auto path clamped to 2..=8; explicit sizes must pass
        // through untouched well past that cap.
        assert_eq!(resolve_workers(64, None, None).unwrap(), 64);
        assert_eq!(resolve_workers(0, Some("32"), None).unwrap(), 32);
        assert_eq!(resolve_workers(0, None, Some(128)).unwrap(), 128);
    }

    #[test]
    fn worker_resolution_rejects_zero_and_junk() {
        assert!(matches!(
            resolve_workers(0, None, Some(0)),
            Err(BindError::InvalidWorkers)
        ));
        for bad in ["0", "", "eight", "-2", "3.5"] {
            let err = resolve_workers(0, Some(bad), None).unwrap_err();
            assert!(
                matches!(&err, BindError::InvalidWorkersEnv { value } if value == bad),
                "expected InvalidWorkersEnv for {bad:?}, got {err:?}"
            );
            assert!(err.to_string().contains("ANYK_SERVE_WORKERS"));
        }
    }

    #[test]
    fn bind_rejects_zero_workers_with_typed_error() {
        if std::env::var("ANYK_SERVE_WORKERS").is_ok() {
            return; // env override would shadow the service config
        }
        let service = Service::with_config(
            Engine::new(Catalog::new()),
            ServiceConfig {
                workers: Some(0),
                ..ServiceConfig::default()
            },
        );
        let err = match Server::bind(service, "127.0.0.1:0") {
            Err(e) => e,
            Ok(_) => panic!("bind must reject a zero-worker pool"),
        };
        assert!(matches!(err, BindError::InvalidWorkers));
        assert!(err.to_string().contains("at least 1"));
    }
}
