//! The line protocol: how [`Response`]s and [`ServeError`]s render to
//! text, shared verbatim by the TCP transport and the in-process
//! [`LocalClient`] — one encoder, so both transports are byte-
//! identical by construction.
//!
//! Framing: every reply is a header line (`OK ...` or `ERR ...`),
//! zero or more `ROW `/`INFO ` lines, and a terminating `END` line.
//!
//! ```text
//! > SELECT R(x,y), S(y,z) RANK BY sum LIMIT 2;
//! OK cursor=0 rows=2 done=false
//! ROW 2,10,200 cost=0.15
//! ROW 1,10,100 cost=0.8
//! END
//! > NEXT 2 ON 0;
//! OK cursor=- rows=1 done=true
//! ROW 3,30,300 cost=1.1
//! END
//! ```

use crate::service::{AnalyzeReport, Page, Response, ServeError, Service, ServiceStats, Session};
use anyk_engine::RankedAnswer;
use anyk_obs::{QueryTrace, Stage, RANKS, ROUTES};
use std::fmt::Write as _;

/// True when `line` is the reply terminator (`END`, any trailing
/// whitespace ignored). Decoders — [`TcpClient`](crate::TcpClient)'s
/// reply reader in particular — use this instead of spelling the
/// literal, so the protocol vocabulary stays in this file.
pub fn is_terminator(line: &str) -> bool {
    line.trim_end() == "END"
}

/// Render one answer as its `ROW` line (no trailing newline):
/// `ROW <v1>,<v2>,... cost=<cost>`. The single source of truth for
/// answer bytes — tests and the E16 bench compare server pages against
/// direct [`PreparedQuery`](anyk_engine::PreparedQuery) streams through
/// this same function.
pub fn encode_answer(a: &RankedAnswer) -> String {
    let mut line = String::from("ROW ");
    for (i, v) in a.values.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "{v}");
    }
    let _ = write!(line, " cost={}", a.cost);
    line
}

/// Render a full response block, `END`-terminated, every line ending
/// in `\n`.
pub fn encode_response(resp: &Response) -> String {
    let mut out = String::new();
    match resp {
        Response::Page(Page {
            cursor,
            answers,
            done,
        }) => {
            let cursor = match cursor {
                Some(id) => id.to_string(),
                None => "-".to_string(),
            };
            let _ = writeln!(out, "OK cursor={cursor} rows={} done={done}", answers.len());
            for a in answers {
                out.push_str(&encode_answer(a));
                out.push('\n');
            }
        }
        Response::Explained(plan) => {
            let _ = writeln!(out, "OK explain");
            for line in plan.lines() {
                let _ = writeln!(out, "INFO {line}");
            }
        }
        Response::Stats(stats) => {
            let _ = writeln!(out, "OK stats");
            for (key, value) in stats_fields(stats) {
                let _ = writeln!(out, "INFO {key}={value}");
            }
        }
        Response::Analyzed(report) => {
            encode_analyze(&mut out, report);
        }
        Response::Traces { slow, traces } => {
            let source = if *slow { "slow" } else { "ring" };
            let _ = writeln!(out, "OK traces count={} source={source}", traces.len());
            for t in traces.iter() {
                out.push_str(&encode_trace(t));
                out.push('\n');
            }
        }
        Response::Closed { cursor } => {
            let _ = writeln!(out, "OK closed={cursor}");
        }
        Response::Appended {
            rows,
            deltas,
            compacted,
        } => {
            let _ = writeln!(
                out,
                "OK appended rows={rows} deltas={deltas} compacted={compacted}"
            );
        }
    }
    out.push_str("END\n");
    out
}

/// Render the `EXPLAIN ANALYZE` report: one `INFO` line per fact, one
/// per stage (`stage.<name>_us=`), one per shard (`shard.<i>.rows=`).
fn encode_analyze(out: &mut String, r: &AnalyzeReport) {
    let _ = writeln!(out, "OK analyze");
    let _ = writeln!(out, "INFO route={}", r.route);
    let _ = writeln!(out, "INFO rank={}", r.rank);
    let _ = writeln!(out, "INFO cache={}", hit_label(r.cache_hit));
    let _ = writeln!(out, "INFO index={}", r.index);
    let _ = writeln!(out, "INFO shards={}", r.shards);
    let _ = writeln!(out, "INFO merge_depth={}", r.merge_depth);
    let _ = writeln!(out, "INFO rows={}", r.rows);
    let _ = writeln!(out, "INFO limit={}", r.limit);
    for (stage, us) in Stage::ALL.iter().zip(r.stage_us) {
        let _ = writeln!(out, "INFO stage.{}_us={us}", stage.label());
    }
    let sum: u64 = r.stage_us.iter().sum();
    let _ = writeln!(out, "INFO stage_sum_us={sum}");
    let _ = writeln!(out, "INFO wall_us={}", r.wall_us);
    for (i, rows) in r.shard_rows.iter().enumerate() {
        let _ = writeln!(out, "INFO shard.{i}.rows={rows}");
    }
}

/// One trace as a single `INFO` line (the `TRACE` commands' row unit).
fn encode_trace(t: &QueryTrace) -> String {
    let route = ROUTES.get(t.route as usize).copied().unwrap_or(ROUTES[0]);
    let rank = RANKS.get(t.rank as usize).copied().unwrap_or(RANKS[0]);
    let mut line = format!(
        "INFO trace id={} route={route} rank={rank} cache={} index={} shards={} depth={} rows={} limit={} total_us={}",
        t.id,
        hit_label(t.cache == 1),
        index_label(t.index),
        t.shards,
        t.merge_depth,
        t.rows,
        t.limit,
        t.total_us,
    );
    for (stage, us) in Stage::ALL.iter().zip(t.stage_us) {
        let _ = write!(line, " {}_us={us}", stage.label());
    }
    line
}

/// `hit`/`miss` for plan-cache provenance.
fn hit_label(hit: bool) -> &'static str {
    if hit {
        "hit"
    } else {
        "miss"
    }
}

/// The wire form of [`QueryTrace::index`]'s provenance code.
fn index_label(code: u64) -> &'static str {
    match code {
        1 => "cached",
        2 => "built",
        _ => "n/a",
    }
}

/// Render an error block: `ERR <kind>: <message>` + `END`.
pub fn encode_error(err: &ServeError) -> String {
    // The wrapped errors render without `ServeError`'s own prefix —
    // the wire's `kind` tag already says which layer failed.
    let (kind, msg) = match err {
        ServeError::Parse(e) => ("parse", e.to_string()),
        ServeError::Engine(e) => ("engine", e.to_string()),
        ServeError::UnknownCursor { .. } | ServeError::CursorExpired { .. } => {
            ("cursor", err.to_string())
        }
        ServeError::AdmissionRejected { .. } => ("admission", err.to_string()),
        ServeError::BatchTooLarge { .. } | ServeError::RaggedInsert { .. } => {
            ("batch", err.to_string())
        }
        ServeError::CsvRejected { message } => ("csv", message.clone()),
    };
    format!("ERR {kind}: {msg}\nEND\n")
}

/// The accept-time load-shedding reply: the one block a transport
/// writes before closing a connection refused by
/// [`ServiceConfig::max_connections`](crate::ServiceConfig::max_connections).
/// Shaped like every other typed error (`ERR admission: ...` + `END`)
/// so clients reuse their error decoder; the message names the
/// resource (`connections`) to distinguish it from per-cursor
/// admission rejects.
pub fn encode_connection_rejected(open: usize, max: usize) -> String {
    format!("ERR admission: connections {open} of {max} open\nEND\n")
}

/// The `STATS` key/value pairs, in a fixed render order: the flat
/// service counters first, then the per-route × per-ranking breakdown
/// (`route.<route>.<rank>.<field>=`), rendered only for cells that
/// have served at least one query so an idle service stays compact.
fn stats_fields(s: &ServiceStats) -> Vec<(String, String)> {
    let fixed: Vec<(&'static str, String)> = vec![
        ("shards", s.shards.to_string()),
        ("queries", s.queries.to_string()),
        ("answers_served", s.answers_served.to_string()),
        ("pages_served", s.pages_served.to_string()),
        ("cursors_opened", s.cursors_opened.to_string()),
        ("cursors_closed", s.cursors_closed.to_string()),
        ("cursors_expired", s.cursors_expired.to_string()),
        ("admission_rejected", s.admission_rejected.to_string()),
        ("open_cursors", s.open_cursors.to_string()),
        ("ttf_min_us", s.ttf_min_us.to_string()),
        ("ttf_mean_us", s.ttf_mean_us.to_string()),
        ("ttf_max_us", s.ttf_max_us.to_string()),
        ("ttf_p50_us", s.ttf_p50_us.to_string()),
        ("ttf_p95_us", s.ttf_p95_us.to_string()),
        ("ttf_p99_us", s.ttf_p99_us.to_string()),
        ("page_p50_us", s.page_p50_us.to_string()),
        ("page_p95_us", s.page_p95_us.to_string()),
        ("page_p99_us", s.page_p99_us.to_string()),
        ("open_connections", s.open_connections.to_string()),
        ("connections_rejected", s.connections_rejected.to_string()),
        ("plan_cache_hits", s.cache.hits.to_string()),
        ("plan_cache_misses", s.cache.misses.to_string()),
        ("plan_cache_evictions", s.cache.evictions.to_string()),
        ("plan_cache_entries", s.cache.entries.to_string()),
        ("plan_cache_capacity", s.cache.capacity.to_string()),
        ("index_hits", s.index.hits.to_string()),
        ("index_misses", s.index.misses.to_string()),
        ("index_builds", s.index.builds.to_string()),
        ("index_evictions", s.index.evictions.to_string()),
        ("index_resident_bytes", s.index.resident_bytes.to_string()),
        ("index_entries", s.index.entries.to_string()),
        ("index_capacity_bytes", s.index.capacity_bytes.to_string()),
        ("prepare_p50_us", s.prepare_p50_us.to_string()),
        ("prepare_p95_us", s.prepare_p95_us.to_string()),
        ("prepare_p99_us", s.prepare_p99_us.to_string()),
        ("delay_p50_us", s.delay_p50_us.to_string()),
        ("delay_p99_us", s.delay_p99_us.to_string()),
        ("traces_published", s.traces_published.to_string()),
        ("traces_dropped", s.traces_dropped.to_string()),
        ("slow_queries", s.slow_queries.to_string()),
        ("appends", s.appends.to_string()),
        ("appended_rows", s.appended_rows.to_string()),
        ("compactions", s.compactions.to_string()),
        ("append_invalidations", s.append_invalidations.to_string()),
    ];
    let mut out: Vec<(String, String)> =
        fixed.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
    for (r, row) in s.routes.iter().enumerate() {
        for (k, cell) in row.iter().enumerate() {
            if cell.queries == 0 {
                continue;
            }
            let prefix = format!("route.{}.{}", ROUTES[r], RANKS[k]);
            out.push((format!("{prefix}.queries"), cell.queries.to_string()));
            out.push((format!("{prefix}.answers"), cell.answers.to_string()));
            out.push((format!("{prefix}.ttf_p50_us"), cell.ttf_p50_us.to_string()));
            out.push((format!("{prefix}.ttf_p99_us"), cell.ttf_p99_us.to_string()));
        }
    }
    out
}

/// Serve one protocol line against a session, returning the exact
/// bytes a transport writes back. The one entry point both transports
/// share.
pub fn respond(session: &mut Session, line: &str) -> String {
    let result = session.execute(line);
    // The pending trace (a `SELECT`'s) is missing only its encode
    // stage; time the rendering on the service clock and publish.
    let tracing = session.tracing();
    let t0 = if tracing { session.now_us() } else { 0 };
    let out = match result {
        Ok(resp) => encode_response(&resp),
        Err(err) => encode_error(&err),
    };
    let encode_us = if tracing {
        session.now_us().saturating_sub(t0)
    } else {
        0
    };
    session.finish_trace(encode_us);
    out
}

/// An in-process client: the full protocol without a socket. Wraps a
/// [`Session`] and speaks the same bytes as the TCP transport (both
/// route through [`respond`]), so tests and benches can drive the
/// service at memory speed and still assert wire-level behavior.
///
/// ```
/// use anyk_serve::{LocalClient, Service};
/// use anyk_engine::Engine;
/// use anyk_storage::{Catalog, RelationBuilder, Schema};
///
/// let mut catalog = Catalog::new();
/// let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
/// r.push_ints(&[1, 10], 0.3);
/// r.push_ints(&[2, 10], 0.1);
/// catalog.register("R", r.finish());
/// let mut s = RelationBuilder::new(Schema::new(["b", "c"]));
/// s.push_ints(&[10, 100], 0.5);
/// catalog.register("S", s.finish());
///
/// let service = Service::new(Engine::new(catalog));
/// let mut client = LocalClient::new(&service);
/// let reply = client.send("SELECT R(a,b), S(b,c) RANK BY sum LIMIT 1;");
/// assert!(reply.starts_with("OK cursor=0 rows=1 done=false\nROW 2,10,100"));
/// assert!(reply.ends_with("END\n"));
/// let reply = client.send("CLOSE 0;");
/// assert_eq!(reply, "OK closed=0\nEND\n");
/// ```
pub struct LocalClient {
    session: Session,
}

impl LocalClient {
    /// Open an in-process session against `service`.
    pub fn new(service: &Service) -> Self {
        LocalClient {
            session: service.session(),
        }
    }

    /// Send one command line; returns the full `END`-terminated reply
    /// block, byte-identical to what the TCP transport would write.
    pub fn send(&mut self, line: &str) -> String {
        respond(&mut self.session, line)
    }

    /// The underlying session (cursor inspection in tests).
    pub fn session(&self) -> &Session {
        &self.session
    }
}
