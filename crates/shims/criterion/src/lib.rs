//! Offline in-tree shim for the subset of the `criterion` API the
//! bench targets use: `Criterion`, benchmark groups, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Instead of criterion's statistical machinery this shim times a
//! fixed number of iterations and prints `name ... mean seconds` —
//! enough to compile and smoke-run `cargo bench` without network
//! access. The `anyk-bench` experiment runner (not criterion) is the
//! repo's source of quantitative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to the measurement closure; `iter` times the workload.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration, filled in by `iter`.
    mean: f64,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        std::hint::black_box(f());
        // LINT-ALLOW(timing-discipline): a criterion shim's contract is wall-clock measurement, and shim-purity forbids it importing anyk-obs.
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.mean = start.elapsed().as_secs_f64() / self.samples as f64;
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            mean: 0.0,
        };
        f(&mut b);
        println!(
            "bench {:<50} {:>12.6e} s/iter",
            format!("{}/{}", self.name, id),
            b.mean
        );
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.id, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Throughput hints (accepted, ignored).
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _parent: self,
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut b = Bencher {
            samples: 10,
            mean: 0.0,
        };
        f(&mut b);
        println!("bench {:<50} {:>12.6e} s/iter", name, b.mean);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(1));
        let mut ran = 0usize;
        g.bench_function("f", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 42), &5usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        // warm-up + samples
        assert_eq!(ran, 4);
    }
}
