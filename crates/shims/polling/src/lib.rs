//! Offline in-tree shim exposing the readiness-polling API subset this
//! workspace uses (modeled on the `polling` crate): a [`Poller`] that
//! watches raw file descriptors for read/write readiness, plus a
//! cross-thread [`notify`](Poller::notify) wake-up.
//!
//! The workspace must build without network access **and** without the
//! `libc` crate, so the syscalls are declared in-tree with thin
//! `extern "C"` bindings (std already links the platform C library, so
//! they resolve at link time). Two backends:
//!
//! * **epoll** (Linux, the default there): one `epoll` instance,
//!   level-triggered, `O(ready)` wakeups — the scalable path for the
//!   event-loop transport.
//! * **poll** (every Unix, and `ANYK_POLLER=poll` forces it on Linux):
//!   a portable `poll(2)` loop over a registered-fd table — `O(fds)`
//!   per wakeup, but it runs anywhere and keeps the epoll path honest
//!   (the test suites run against both).
//!
//! Semantics are **level-triggered** and **persistent**: an interest
//! set with [`add`](Poller::add)/[`modify`](Poller::modify) keeps
//! firing while the fd stays ready, until modified or
//! [`delete`](Poller::delete)d. Error/hang-up conditions are reported
//! as both readable and writable so the owner's next I/O call observes
//! the failure. This is a deliberate simplification of the upstream
//! crate's oneshot default — the in-tree event loop re-computes
//! interest after every wakeup anyway.
//!
//! ```
//! use polling::Poller;
//! use std::sync::Arc;
//!
//! // `notify` wakes a `wait` from any thread — the worker-pool →
//! // event-thread handoff in the server's event loop.
//! let poller = Arc::new(Poller::new().unwrap());
//! let waker = Arc::clone(&poller);
//! let t = std::thread::spawn(move || waker.notify().unwrap());
//! let mut events = Vec::new();
//! poller.wait(&mut events, None).unwrap(); // returns on notify()
//! assert!(events.is_empty(), "a bare notify carries no fd event");
//! t.join().unwrap();
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]

/// A readiness interest or a delivered readiness event: which `key`
/// (caller-chosen token) and which directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller's token for the registered fd (delivered back
    /// verbatim on readiness). `usize::MAX` is reserved for the
    /// poller's internal notify pipe.
    pub key: usize,
    /// Interested in / ready for reading.
    pub readable: bool,
    /// Interested in / ready for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (keeps the registration alive for a later
    /// [`modify`](Poller::modify)).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// The reserved key the poller registers its internal notify pipe
/// under; never delivered to callers.
const NOTIFY_KEY: usize = usize::MAX;

#[cfg(unix)]
mod sys {
    //! The in-tree syscall bindings: just the symbols the two backends
    //! need, declared directly (std links the C library already).
    #![allow(non_camel_case_types)]

    pub type RawFd = i32;

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct pollfd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    pub const F_SETFL: i32 = 4;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: i32 = 0x800;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: i32 = 0x4;

    extern "C" {
        // `nfds_t` is the platform's `unsigned long`, which matches
        // `usize` on every Unix LP64/ILP32 ABI this workspace targets.
        pub fn poll(fds: *mut pollfd, nfds: usize, timeout: i32) -> i32;
        pub fn pipe(fds: *mut RawFd) -> i32;
        pub fn fcntl(fd: RawFd, cmd: i32, arg: i32) -> i32;
        pub fn close(fd: RawFd) -> i32;
        pub fn read(fd: RawFd, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: RawFd, buf: *const u8, count: usize) -> isize;
    }

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use super::RawFd;

        // The kernel ABI packs `epoll_event` on x86-64 only.
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Debug, Clone, Copy)]
        pub struct epoll_event {
            pub events: u32,
            pub data: u64,
        }

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;
        pub const EPOLL_CLOEXEC: i32 = 0x80000;

        extern "C" {
            pub fn epoll_create1(flags: i32) -> RawFd;
            pub fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, event: *mut epoll_event) -> i32;
            pub fn epoll_wait(
                epfd: RawFd,
                events: *mut epoll_event,
                maxevents: i32,
                timeout: i32,
            ) -> i32;
        }
    }
}

#[cfg(unix)]
mod imp {
    use super::{sys, Event, NOTIFY_KEY};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::sync::Mutex;
    use std::time::Duration;

    /// Upper bound on events translated per [`Poller::wait`] call (the
    /// rest surface on the next call — level-triggered interests
    /// re-fire).
    const MAX_EVENTS: usize = 1024;

    fn last_err() -> io::Error {
        io::Error::last_os_error()
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(last_err())
        } else {
            Ok(ret)
        }
    }

    /// Millisecond timeout for `poll`/`epoll_wait`: `None` blocks
    /// forever; sub-millisecond waits round up so they stay waits.
    fn timeout_ms(timeout: Option<Duration>) -> i32 {
        match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis().min(i32::MAX as u128) as i32;
                if ms == 0 && d > Duration::ZERO {
                    1
                } else {
                    ms
                }
            }
        }
    }

    #[derive(Debug, Clone, Copy)]
    struct Interest {
        key: usize,
        readable: bool,
        writable: bool,
    }

    #[derive(Debug)]
    enum Backend {
        #[cfg(target_os = "linux")]
        Epoll { epfd: RawFd },
        Poll {
            registry: Mutex<HashMap<RawFd, Interest>>,
        },
    }

    #[derive(Debug)]
    pub struct Poller {
        backend: Backend,
        notify_read: RawFd,
        notify_write: RawFd,
    }

    // SAFETY: every field is either plain data or independently
    // thread-safe — the epoll fd may be used from any thread by kernel
    // contract, the poll registry is behind a `Mutex`, and the pipe
    // ends are raw fds (read only by `wait`, written only by
    // `notify`; concurrent pipe reads/writes are kernel-serialized).
    unsafe impl Send for Poller {}
    // SAFETY: `&Poller` only exposes `epoll_ctl`/`epoll_wait` on the
    // epoll fd (thread-safe per epoll(7)), mutex-guarded registry
    // access, and byte-sized pipe I/O — all safe to call from many
    // threads at once.
    unsafe impl Sync for Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let force_poll = std::env::var("ANYK_POLLER").is_ok_and(|v| v == "poll");
            if force_poll {
                return Poller::portable();
            }
            #[cfg(target_os = "linux")]
            {
                // SAFETY: epoll_create1 takes no pointers; it either
                // yields a fresh fd we own or -1 (checked below).
                let epfd = check(unsafe { sys::epoll::epoll_create1(sys::epoll::EPOLL_CLOEXEC) })?;
                Poller::finish(Backend::Epoll { epfd })
            }
            #[cfg(not(target_os = "linux"))]
            {
                Poller::portable()
            }
        }

        pub fn portable() -> io::Result<Poller> {
            Poller::finish(Backend::Poll {
                registry: Mutex::new(HashMap::new()),
            })
        }

        /// Close whatever fds `backend` owns (the error paths below
        /// must not leak the epoll fd; `Backend` has no `Drop`).
        fn close_backend(backend: &Backend) {
            #[cfg(target_os = "linux")]
            if let Backend::Epoll { epfd } = backend {
                // SAFETY: `epfd` came from `epoll_create1` and is owned
                // exclusively by this `Backend`, which is being torn
                // down — nothing can use the fd after this close.
                unsafe {
                    sys::close(*epfd);
                }
            }
            #[cfg(not(target_os = "linux"))]
            let _ = backend;
        }

        fn finish(backend: Backend) -> io::Result<Poller> {
            let mut fds: [RawFd; 2] = [-1, -1];
            // SAFETY: `pipe` writes exactly two fds through the
            // pointer; `fds` is a live [RawFd; 2] on this stack frame.
            if let Err(e) = check(unsafe { sys::pipe(fds.as_mut_ptr()) }) {
                Self::close_backend(&backend);
                return Err(e);
            }
            let (r, w) = (fds[0], fds[1]);
            for fd in [r, w] {
                // Capture the fcntl error before the close calls can
                // clobber errno.
                // SAFETY: pure-integer syscall on a pipe fd we just
                // created; no pointers involved.
                if let Err(e) = check(unsafe { sys::fcntl(fd, sys::F_SETFL, sys::O_NONBLOCK) }) {
                    // SAFETY: `r` and `w` are the two pipe fds created
                    // above, owned here and not yet shared; closing
                    // them on this error path cannot race anything.
                    unsafe {
                        sys::close(r);
                        sys::close(w);
                    }
                    Self::close_backend(&backend);
                    return Err(e);
                }
            }
            let poller = Poller {
                backend,
                notify_read: r,
                notify_write: w,
            };
            poller.register_fd(r, Event::readable(NOTIFY_KEY))?;
            Ok(poller)
        }

        pub fn backend_name(&self) -> &'static str {
            match self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll { .. } => "epoll",
                Backend::Poll { .. } => "poll",
            }
        }

        pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            self.register_fd(source.as_raw_fd(), interest)
        }

        fn register_fd(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            match &self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll { epfd } => {
                    let mut ev = sys::epoll::epoll_event {
                        events: epoll_bits(interest),
                        data: interest.key as u64,
                    };
                    // SAFETY: `epfd` is our live epoll fd and `ev`
                    // points to a stack-local epoll_event that outlives
                    // the call (epoll_ctl does not retain the pointer).
                    check(unsafe {
                        sys::epoll::epoll_ctl(*epfd, sys::epoll::EPOLL_CTL_ADD, fd, &mut ev)
                    })?;
                    Ok(())
                }
                Backend::Poll { registry } => {
                    registry.lock().expect("poller registry").insert(
                        fd,
                        Interest {
                            key: interest.key,
                            readable: interest.readable,
                            writable: interest.writable,
                        },
                    );
                    Ok(())
                }
            }
        }

        pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            let fd = source.as_raw_fd();
            match &self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll { epfd } => {
                    let mut ev = sys::epoll::epoll_event {
                        events: epoll_bits(interest),
                        data: interest.key as u64,
                    };
                    // SAFETY: same contract as ADD — live epoll fd,
                    // stack-local event struct, pointer not retained.
                    check(unsafe {
                        sys::epoll::epoll_ctl(*epfd, sys::epoll::EPOLL_CTL_MOD, fd, &mut ev)
                    })?;
                    Ok(())
                }
                Backend::Poll { registry } => {
                    let mut reg = registry.lock().expect("poller registry");
                    match reg.get_mut(&fd) {
                        Some(i) => {
                            *i = Interest {
                                key: interest.key,
                                readable: interest.readable,
                                writable: interest.writable,
                            };
                            Ok(())
                        }
                        None => Err(io::Error::new(
                            io::ErrorKind::NotFound,
                            "modify on an unregistered fd",
                        )),
                    }
                }
            }
        }

        pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
            let fd = source.as_raw_fd();
            match &self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll { epfd } => {
                    let mut ev = sys::epoll::epoll_event { events: 0, data: 0 };
                    // SAFETY: live epoll fd; DEL ignores the event but
                    // pre-2.6.9 kernels require a non-null pointer, so
                    // we pass a stack-local dummy that outlives the
                    // call.
                    check(unsafe {
                        sys::epoll::epoll_ctl(*epfd, sys::epoll::EPOLL_CTL_DEL, fd, &mut ev)
                    })?;
                    Ok(())
                }
                Backend::Poll { registry } => {
                    registry.lock().expect("poller registry").remove(&fd);
                    Ok(())
                }
            }
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let ms = timeout_ms(timeout);
            match &self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll { epfd } => {
                    let mut raw = [sys::epoll::epoll_event { events: 0, data: 0 }; MAX_EVENTS];
                    let n = loop {
                        // SAFETY: `raw` is a stack buffer of exactly
                        // MAX_EVENTS epoll_events and we pass that same
                        // capacity, so the kernel writes only within
                        // bounds; `epfd` is our live epoll fd.
                        let n = unsafe {
                            sys::epoll::epoll_wait(*epfd, raw.as_mut_ptr(), MAX_EVENTS as i32, ms)
                        };
                        if n >= 0 {
                            break n as usize;
                        }
                        let err = last_err();
                        if err.kind() != io::ErrorKind::Interrupted {
                            return Err(err);
                        }
                    };
                    for ev in &raw[..n] {
                        // Copy the (possibly packed) fields out first.
                        let (bits, data) = (ev.events, ev.data);
                        if data == NOTIFY_KEY as u64 {
                            self.drain_notify();
                            continue;
                        }
                        let hup = bits & (sys::epoll::EPOLLERR | sys::epoll::EPOLLHUP) != 0;
                        events.push(Event {
                            key: data as usize,
                            readable: bits & sys::epoll::EPOLLIN != 0 || hup,
                            writable: bits & sys::epoll::EPOLLOUT != 0 || hup,
                        });
                    }
                    Ok(events.len())
                }
                Backend::Poll { registry } => {
                    // Snapshot the registry so the poll syscall runs
                    // without holding the lock (notify/add from other
                    // threads must never block on a sleeping wait).
                    let mut fds: Vec<sys::pollfd> = Vec::new();
                    let mut keys: Vec<Interest> = Vec::new();
                    {
                        let reg = registry.lock().expect("poller registry");
                        fds.reserve(reg.len());
                        for (&fd, &interest) in reg.iter() {
                            let mut bits = 0i16;
                            if interest.readable {
                                bits |= sys::POLLIN;
                            }
                            if interest.writable {
                                bits |= sys::POLLOUT;
                            }
                            fds.push(sys::pollfd {
                                fd,
                                events: bits,
                                revents: 0,
                            });
                            keys.push(interest);
                        }
                    }
                    loop {
                        // SAFETY: `fds` is a live Vec<pollfd> and we
                        // pass its exact length; poll only mutates the
                        // `revents` field of those entries.
                        let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len(), ms) };
                        if n >= 0 {
                            break;
                        }
                        let err = last_err();
                        if err.kind() != io::ErrorKind::Interrupted {
                            return Err(err);
                        }
                    }
                    for (pfd, interest) in fds.iter().zip(&keys) {
                        let bits = pfd.revents;
                        if bits == 0 {
                            continue;
                        }
                        if interest.key == NOTIFY_KEY {
                            self.drain_notify();
                            continue;
                        }
                        let hup = bits & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
                        events.push(Event {
                            key: interest.key,
                            readable: bits & sys::POLLIN != 0 || hup,
                            writable: bits & sys::POLLOUT != 0 || hup,
                        });
                    }
                    Ok(events.len())
                }
            }
        }

        pub fn notify(&self) -> io::Result<()> {
            let buf = [1u8];
            // SAFETY: writes 1 byte from a live 1-byte stack buffer to
            // the pipe fd this Poller owns.
            let n = unsafe { sys::write(self.notify_write, buf.as_ptr(), 1) };
            if n == 1 {
                return Ok(());
            }
            let err = last_err();
            // A full pipe means a wake-up is already pending — done.
            if err.kind() == io::ErrorKind::WouldBlock {
                Ok(())
            } else {
                Err(err)
            }
        }

        /// Empty the notify pipe so the next `notify` produces a fresh
        /// edge (the pipe is nonblocking; stop on empty).
        fn drain_notify(&self) {
            let mut buf = [0u8; 64];
            // SAFETY: reads at most `buf.len()` bytes into a live
            // stack buffer of exactly that size, from our own pipe fd.
            while unsafe { sys::read(self.notify_read, buf.as_mut_ptr(), buf.len()) } > 0 {}
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: all three fds are owned exclusively by this
            // Poller (created in `finish`/`new`, never duplicated or
            // exposed), and Drop means no other reference exists — so
            // no close can race a concurrent use of the same fd.
            unsafe {
                sys::close(self.notify_read);
                sys::close(self.notify_write);
                #[cfg(target_os = "linux")]
                if let Backend::Epoll { epfd } = self.backend {
                    sys::close(epfd);
                }
            }
        }
    }

    #[cfg(target_os = "linux")]
    fn epoll_bits(interest: Event) -> u32 {
        let mut bits = 0;
        if interest.readable {
            bits |= sys::epoll::EPOLLIN;
        }
        if interest.writable {
            bits |= sys::epoll::EPOLLOUT;
        }
        bits
    }
}

#[cfg(not(unix))]
mod imp {
    //! Non-Unix stub: the event-loop transport is Unix-only; every
    //! operation reports `Unsupported` so the workspace still compiles
    //! (the server falls back to the threaded transport there).
    use super::Event;
    use std::io;
    use std::time::Duration;

    #[derive(Debug)]
    pub struct Poller {}

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "readiness polling is unsupported on this platform",
        )
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }

        pub fn portable() -> io::Result<Poller> {
            Err(unsupported())
        }

        pub fn backend_name(&self) -> &'static str {
            "unsupported"
        }

        pub fn add<T>(&self, _source: &T, _interest: Event) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn modify<T>(&self, _source: &T, _interest: Event) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn delete<T>(&self, _source: &T) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn wait(
            &self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            Err(unsupported())
        }

        pub fn notify(&self) -> io::Result<()> {
            Err(unsupported())
        }
    }
}

/// A readiness poller over raw file descriptors. See the crate docs
/// for backend selection and semantics; the API mirrors the subset of
/// the upstream `polling` crate this workspace uses:
///
/// * [`new`](Poller::new) / [`portable`](Poller::portable) — create
///   (env `ANYK_POLLER=poll` forces the portable backend);
/// * [`add`](Poller::add) / [`modify`](Poller::modify) /
///   [`delete`](Poller::delete) — manage per-fd interests (the fd must
///   outlive its registration; sockets should be nonblocking);
/// * [`wait`](Poller::wait) — block for readiness (or a timeout),
///   filling a caller-owned `Vec<Event>`;
/// * [`notify`](Poller::notify) — wake a concurrent `wait` from any
///   thread.
pub use imp::Poller;

#[cfg(all(test, unix))]
mod tests {
    use super::{Event, Poller};
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// Both backends under one test body: epoll where available, and
    /// the portable poll(2) path everywhere.
    fn pollers() -> Vec<Poller> {
        let mut v = vec![Poller::portable().expect("portable poller")];
        if cfg!(target_os = "linux") {
            // `new` may still pick poll if ANYK_POLLER=poll is set;
            // either way it must work.
            v.push(Poller::new().expect("default poller"));
        }
        v
    }

    #[test]
    fn timeout_elapses_without_events() {
        for poller in pollers() {
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(5)))
                .expect("wait");
            assert_eq!(n, 0, "{}", poller.backend_name());
        }
    }

    #[test]
    fn notify_wakes_a_blocking_wait() {
        for poller in pollers() {
            let poller = std::sync::Arc::new(poller);
            let waker = std::sync::Arc::clone(&poller);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                waker.notify().expect("notify");
            });
            let mut events = Vec::new();
            poller.wait(&mut events, None).expect("wait");
            assert!(events.is_empty());
            t.join().expect("notifier");
        }
    }

    #[test]
    fn listener_and_stream_readiness_round_trip() {
        for poller in pollers() {
            let name = poller.backend_name();
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.set_nonblocking(true).expect("nonblocking");
            poller.add(&listener, Event::readable(7)).expect("add");

            // A connection makes the listener readable.
            let mut client =
                TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert!(
                events.iter().any(|e| e.key == 7 && e.readable),
                "{name}: accept readiness, got {events:?}"
            );
            let (server_side, _) = listener.accept().expect("accept");
            server_side.set_nonblocking(true).expect("nonblocking");

            // A fresh stream is writable but not readable...
            poller.add(&server_side, Event::all(9)).expect("add stream");
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            let ev = events.iter().find(|e| e.key == 9).expect("stream event");
            assert!(ev.writable && !ev.readable, "{name}: {ev:?}");

            // ...until the peer sends bytes (interest narrowed to
            // reads so the always-writable side stops firing).
            poller
                .modify(&server_side, Event::readable(9))
                .expect("modify");
            client.write_all(b"ping").expect("send");
            client.flush().expect("flush");
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            let ev = events.iter().find(|e| e.key == 9).expect("read event");
            assert!(ev.readable, "{name}: {ev:?}");
            let mut buf = [0u8; 8];
            let mut s = &server_side;
            assert_eq!(s.read(&mut buf).expect("read"), 4);

            // Deleted fds stop reporting.
            poller.delete(&server_side).expect("delete");
            client.write_all(b"more").expect("send");
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .expect("wait");
            assert!(
                events.iter().all(|e| e.key != 9),
                "{name}: deleted fd fired {events:?}"
            );
            poller.delete(&listener).expect("delete listener");
        }
    }
}
