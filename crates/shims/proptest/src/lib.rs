//! Offline in-tree shim for the subset of the `proptest` API this
//! workspace uses: the `proptest!` macro, `Strategy` with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `prop::collection::vec`, `Just`, `ProptestConfig::with_cases`, and
//! the `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics: each property runs `cases` times against deterministic
//! seeds derived from the test name, so failures reproduce exactly.
//! There is **no shrinking** — a failing case panics with the plain
//! assertion message. That trades debuggability for zero external
//! dependencies, which the offline build requires.

use rand::{Rng, SeedableRng, StdRng};

/// How many cases each property runs (subset of the real config).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of an associated type.
///
/// The real crate's strategies carry shrinking machinery; this shim
/// only samples.
pub trait Strategy {
    type Value;

    /// Sample one value.
    fn pick(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform sampled values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Use a sampled value to build a dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn pick(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.pick(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn pick(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.pick(rng)).pick(rng)
    }
}

/// Always-the-same-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(i32, i64, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn pick(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.pick(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Element-count specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::{Rng, StdRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(elem, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let SizeRange { lo, hi } = self.size;
            let len = rng.gen_range(lo..=hi);
            (0..len).map(|_| self.elem.pick(rng)).collect()
        }
    }
}

std::thread_local! {
    /// Cases skipped by `prop_assume!` in the current `run_cases`.
    static ASSUME_SKIPS: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Called by the expansion of [`prop_assume!`]; not public API.
#[doc(hidden)]
pub fn record_assume_skip() {
    ASSUME_SKIPS.with(|c| c.set(c.get() + 1));
}

/// Drive one property: `cases` deterministic executions.
///
/// Panics if `prop_assume!` rejected more than 80% of the cases —
/// a green run that executed (almost) no bodies is vacuous, which
/// real proptest also treats as an error ("too many global rejects").
///
/// Used by the generated code of [`proptest!`]; not part of the real
/// crate's public API.
pub fn run_cases<F: FnMut(&mut StdRng)>(config: &ProptestConfig, name: &str, mut body: F) {
    // FNV-1a over the test name gives each property its own stream;
    // the case index perturbs it so cases differ.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    ASSUME_SKIPS.with(|c| c.set(0));
    for case in 0..config.cases {
        let mut rng =
            StdRng::seed_from_u64(h ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)));
        body(&mut rng);
    }
    let skipped = ASSUME_SKIPS.with(std::cell::Cell::get);
    assert!(
        config.cases < 5 || skipped * 5 <= config.cases * 4,
        "property `{name}` is vacuous: prop_assume! rejected {skipped} of {} cases",
        config.cases
    );
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a property (no shrinking, so this is plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs are uninteresting. Skips are
/// counted; a property whose assumption rejects >80% of cases fails
/// as vacuous (see [`run_cases`]).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            $crate::record_assume_skip();
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            $crate::record_assume_skip();
            return;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::pick(&($strat), rng);)+
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(xs in prop::collection::vec((0i64..5, 0u32..=3), 1..=8), n in 2usize..6) {
            prop_assert!(!xs.is_empty() && xs.len() <= 8);
            for (a, b) in &xs {
                prop_assert!((0..5).contains(a));
                prop_assert!(*b <= 3);
            }
            prop_assert!((2..6).contains(&n));
        }

        #[test]
        fn map_and_flat_map(v in (1usize..=4).prop_flat_map(|n| prop::collection::vec(0i32..10, n..=n)).prop_map(|v| v.len())) {
            prop_assert!((1..=4).contains(&v));
        }

        #[test]
        fn assume_skips(x in 0i64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    #[should_panic(expected = "vacuous")]
    fn all_skipped_is_vacuous() {
        crate::run_cases(&ProptestConfig::with_cases(20), "vac", |_rng| {
            prop_assume!(false);
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first: Vec<i64> = Vec::new();
        let mut second: Vec<i64> = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(10), "det", |rng| {
            first.push(crate::Strategy::pick(&(0i64..1000), rng));
        });
        crate::run_cases(&ProptestConfig::with_cases(10), "det", |rng| {
            second.push(crate::Strategy::pick(&(0i64..1000), rng));
        });
        assert_eq!(first, second);
        assert!(first.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }
}
