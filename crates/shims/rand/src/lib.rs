//! Offline in-tree shim for the subset of the `rand` 0.8 API this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range}`,
//! and `distributions::Distribution`.
//!
//! The workspace must build without network access, so instead of the
//! real crate we vendor a deterministic splitmix64/xoshiro256++-based
//! generator behind the same names. Streams are seeded and stable
//! across platforms (which is all the workload generators need) but
//! are NOT bit-identical to upstream `rand` and NOT cryptographic.

/// Sampling a value of some type from a generator.
pub mod distributions {
    use super::{Rng, StandardValue};

    /// A distribution over values of type `T` (the subset of
    /// `rand::distributions::Distribution` we need).
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: `f64` in `[0, 1)`,
    /// integers uniform over their full range.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl<T: StandardValue> Distribution<T> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            rng.gen()
        }
    }
}

/// Named generator types.
pub mod rngs {
    /// Deterministic seedable generator (xoshiro256++ core,
    /// splitmix64 seeding). Drop-in for `rand::rngs::StdRng` in this
    /// workspace's usage.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

/// Types that `Rng::gen` can produce.
pub trait StandardValue: Sized {
    fn from_u64(raw: u64) -> Self;
}

impl StandardValue for u64 {
    #[inline]
    fn from_u64(raw: u64) -> u64 {
        raw
    }
}

impl StandardValue for u32 {
    #[inline]
    fn from_u64(raw: u64) -> u32 {
        (raw >> 32) as u32
    }
}

impl StandardValue for f64 {
    /// 53 uniform random bits scaled into `[0, 1)` — the same
    /// construction upstream `rand` uses for `Standard` floats.
    #[inline]
    fn from_u64(raw: u64) -> f64 {
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for bool {
    #[inline]
    fn from_u64(raw: u64) -> bool {
        raw & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from(self, rng: &mut dyn RawRng) -> Self::Output;
}

/// Object-safe raw 64-bit source; the only method the range/standard
/// samplers need.
pub trait RawRng {
    fn raw_u64(&mut self) -> u64;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut dyn RawRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of the plain variant is irrelevant for
                // workload generation.
                let hi = ((rng.raw_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as u128).wrapping_add(hi as u128)) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut dyn RawRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                if start == end {
                    return start;
                }
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return <$t as StandardValue>::from_u64(rng.raw_u64());
                }
                let hi = ((rng.raw_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                ((start as u128).wrapping_add(hi as u128)) as $t
            }
        }
    )*};
}

int_range_impls!(u64, usize, u32);

macro_rules! signed_range_impls {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut dyn RawRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let hi = ((rng.raw_u64() as u128 * span as u128) >> 64) as $u;
                (self.start as $u).wrapping_add(hi) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut dyn RawRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                if start == end {
                    return start;
                }
                let span = (end as $u).wrapping_sub(start as $u);
                let hi = ((rng.raw_u64() as u128 * (span as u128 + 1)) >> 64) as $u;
                (start as $u).wrapping_add(hi) as $t
            }
        }
    )*};
}

signed_range_impls!(i64 => u64, i32 => u32);

impl StandardValue for usize {
    #[inline]
    fn from_u64(raw: u64) -> usize {
        raw as usize
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RawRng {
    /// A value from the type's standard distribution (`[0, 1)` for
    /// floats, full range for integers).
    #[inline]
    fn gen<T: StandardValue>(&mut self) -> T {
        T::from_u64(self.raw_u64())
    }

    /// Uniform value in `range` (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RawRng + ?Sized> Rng for T {}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RawRng for StdRng {
    /// xoshiro256++ step.
    #[inline]
    fn raw_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Distribution;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.raw_u64(), b.raw_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.raw_u64(), c.raw_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range(0u64..5);
            assert!(v < 5);
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            seen_lo |= w == 0;
            seen_hi |= w == 3;
            let s = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&s));
        }
        assert!(seen_lo && seen_hi, "inclusive range endpoints reachable");
    }

    #[test]
    fn standard_distribution_samples() {
        use super::distributions::Standard;
        let mut rng = StdRng::seed_from_u64(5);
        let f: f64 = Standard.sample(&mut rng);
        assert!((0.0..1.0).contains(&f));
        let _u: u32 = Standard.sample(&mut rng);
        let _b: bool = Standard.sample(&mut rng);
    }

    #[test]
    fn distribution_trait_is_object_usable() {
        struct Const(u64);
        impl Distribution<u64> for Const {
            fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> u64 {
                self.0
            }
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(Const(9).sample(&mut rng), 9);
    }
}
