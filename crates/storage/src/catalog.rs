//! A catalog of named relations plus the string dictionary backing
//! [`Value::Sym`].

use crate::delta::DeltaRelation;
use crate::error::StorageError;
use crate::fxhash::FxHashMap;
use crate::index_catalog::IndexCatalog;
use crate::relation::Relation;
use crate::trie::Trie;
use crate::value::Value;
use std::sync::Arc;

/// Named relations + string interning + the shared index catalog.
///
/// Every entry is a [`DeltaRelation`]: an immutable base payload plus
/// append-only delta batches. [`Catalog::get`] / [`Catalog::lookup`]
/// return the **base** handle (the payload shared trie indexes are
/// built over); delta-aware callers — the engine's prepare path —
/// read the full entry through [`Catalog::entry`] and merge all of
/// its sources. A freshly [`Catalog::register`]ed relation has no
/// deltas, so for read-only catalogs the base *is* the full content.
///
/// Relations are [`Relation`] *handles*: returned references `clone()`
/// as a refcount bump, never an `O(n)` tuple copy — resolution hands
/// out shared payloads. Cloning the whole catalog likewise shares
/// every relation payload (the engine's copy-on-write epoch seam
/// relies on this) — **and** the [`IndexCatalog`], so epoch snapshots
/// keep serving the same warm trie indexes for every relation they
/// did not touch.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    relations: FxHashMap<String, DeltaRelation>,
    symbols: Vec<String>,
    symbol_ids: FxHashMap<String, u32>,
    indexes: Arc<IndexCatalog>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) a relation under `name` as a delta-free
    /// entry. Replacing drops exactly the replaced entry's shared trie
    /// indexes — base and any pending deltas (relation-scoped
    /// invalidation — indexes over other relations stay warm).
    pub fn register<S: Into<String>>(&mut self, name: S, rel: Relation) {
        let new_id = rel.payload_id();
        if let Some(old) = self.relations.insert(name.into(), DeltaRelation::new(rel)) {
            // Same payload re-registered (a no-op replace) keeps its
            // indexes; any genuinely replaced payload is invalidated.
            for id in old.source_ids() {
                if id != new_id {
                    self.indexes.invalidate_payload(id);
                }
            }
        }
    }

    /// Look up a relation by name. Returns the **base** payload
    /// handle; pending delta batches are visible only through
    /// [`Catalog::entry`] (the engine's delta-aware prepare path reads
    /// them there).
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name).map(DeltaRelation::base)
    }

    /// Look up a relation by name, with a typed error for absence —
    /// the non-panicking seam the engine layer routes through. Base
    /// payload only, like [`Catalog::get`].
    pub fn lookup(&self, name: &str) -> Result<&Relation, StorageError> {
        self.get(name)
            .ok_or_else(|| StorageError::RelationNotFound {
                name: name.to_string(),
            })
    }

    /// The full delta-backed entry under `name` (base + pending delta
    /// batches) — what delta-aware readers resolve against.
    pub fn entry(&self, name: &str) -> Option<&DeltaRelation> {
        self.relations.get(name)
    }

    /// Append one immutable batch to the named relation (`O(batch)`:
    /// the batch payload is adopted as a delta, the base is never
    /// rewritten). Typed errors for an unknown relation and for an
    /// arity mismatch; empty batches succeed without adding a delta.
    pub fn append(&mut self, name: &str, batch: Relation) -> Result<(), StorageError> {
        let entry = self
            .relations
            .get_mut(name)
            .ok_or_else(|| StorageError::RelationNotFound {
                name: name.to_string(),
            })?;
        if batch.arity() != entry.base().arity() {
            return Err(StorageError::ArityMismatch {
                name: name.to_string(),
                expected: entry.base().arity(),
                got: batch.arity(),
            });
        }
        entry.push(batch);
        Ok(())
    }

    /// Fold the named relation's deltas into a fresh base payload
    /// (row order preserved: base rows, then deltas oldest-first).
    /// Drops the shared trie indexes of every replaced source payload;
    /// readers holding old handles are untouched. Returns whether a
    /// compaction actually happened (`false` when delta-free).
    pub fn compact(&mut self, name: &str) -> Result<bool, StorageError> {
        let entry = self
            .relations
            .get_mut(name)
            .ok_or_else(|| StorageError::RelationNotFound {
                name: name.to_string(),
            })?;
        let old_ids = entry.source_ids();
        if !entry.compact() {
            return Ok(false);
        }
        for id in old_ids {
            self.indexes.invalidate_payload(id);
        }
        Ok(true)
    }

    /// Remove a relation, returning its full flattened content if
    /// present. All of its source payloads' shared trie indexes are
    /// dropped (relation-scoped invalidation).
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        let removed = self.relations.remove(name);
        removed.map(|entry| {
            for id in entry.source_ids() {
                self.indexes.invalidate_payload(id);
            }
            entry.flatten()
        })
    }

    /// A shared trie index over the named relation whose level order
    /// starts with `positions` — served from the [`IndexCatalog`]
    /// (built lazily on first demand, a refcount bump afterwards).
    pub fn index(&self, name: &str, positions: &[usize]) -> Result<Arc<Trie>, StorageError> {
        use crate::index_catalog::IndexProvider;
        let rel = self.lookup(name)?;
        Ok(self.indexes.trie(rel, positions))
    }

    /// The shared index catalog. Catalog clones (including the
    /// engine's copy-on-write epoch snapshots) return the *same*
    /// catalog, so warm indexes survive epoch bumps for untouched
    /// relations.
    pub fn indexes(&self) -> &Arc<IndexCatalog> {
        &self.indexes
    }

    /// A copy of this catalog with the *same* relations and symbol
    /// dictionary but a **fresh, empty** [`IndexCatalog`] of the same
    /// capacity. Relation payloads are still shared (refcount bumps),
    /// so the fork is `O(#relations)` — this is how a sharded engine
    /// gives each shard its own index budget and hit/miss accounting
    /// while a plain [`Clone`] keeps sharing warm indexes.
    pub fn fork_with_fresh_indexes(&self) -> Catalog {
        Catalog {
            relations: self.relations.clone(),
            symbols: self.symbols.clone(),
            symbol_ids: self.symbol_ids.clone(),
            indexes: Arc::new(IndexCatalog::with_capacity(
                self.indexes.stats().capacity_bytes as usize,
            )),
        }
    }

    /// Names of all registered relations (unspecified order).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// A copy of this catalog with every entry flattened into a single
    /// delta-free payload (base ⊎ deltas, source order preserved) and
    /// a fresh index catalog. Delta-free entries share their payloads
    /// (refcount bumps). The reference-semantics seam for write-path
    /// oracles: an engine over `flattened()` must answer exactly like
    /// one over the live delta-bearing catalog.
    pub fn flattened(&self) -> Catalog {
        let mut out = self.fork_with_fresh_indexes();
        out.relations = self
            .relations
            .iter()
            .map(|(name, entry)| (name.clone(), DeltaRelation::new(entry.flatten())))
            .collect();
        out
    }

    /// Intern a string, returning its symbol value.
    pub fn intern<S: AsRef<str>>(&mut self, s: S) -> Value {
        let s = s.as_ref();
        if let Some(&id) = self.symbol_ids.get(s) {
            return Value::Sym(id);
        }
        let id = self.symbols.len() as u32;
        self.symbols.push(s.to_string());
        self.symbol_ids.insert(s.to_string(), id);
        Value::Sym(id)
    }

    /// Resolve a symbol back to its string.
    pub fn resolve(&self, v: Value) -> Option<&str> {
        match v {
            Value::Sym(id) => self.symbols.get(id as usize).map(String::as_str),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::Schema;

    #[test]
    fn register_and_get() {
        let mut c = Catalog::new();
        let mut b = RelationBuilder::new(Schema::new(["a"]));
        b.push_ints(&[1], 0.0);
        c.register("R", b.finish());
        assert_eq!(c.lookup("R").map(Relation::len), Ok(1));
        assert_eq!(
            c.lookup("S").err(),
            Some(StorageError::RelationNotFound { name: "S".into() })
        );
        assert!(c.get("S").is_none());
        assert_eq!(c.names().collect::<Vec<_>>(), vec!["R"]);
        assert_eq!(c.remove("R").map(|r| r.len()), Some(1));
    }

    #[test]
    fn catalog_index_is_shared_and_invalidated_on_replace() {
        use crate::index_catalog::IndexProvider;
        let mut c = Catalog::new();
        let mut b = RelationBuilder::new(Schema::new(["a", "b"]));
        b.push_ints(&[1, 2], 0.0);
        b.push_ints(&[2, 3], 0.0);
        c.register("R", b.finish());
        let mut b2 = RelationBuilder::new(Schema::new(["a", "b"]));
        b2.push_ints(&[9, 9], 0.0);
        c.register("S", b2.finish());

        let t1 = c.index("R", &[0, 1]).unwrap();
        let t2 = c.index("R", &[0, 1]).unwrap();
        assert!(std::sync::Arc::ptr_eq(&t1, &t2));
        c.index("S", &[0, 1]).unwrap();

        // A clone shares the same index catalog (warm across snapshots).
        let clone = c.clone();
        let t3 = clone.index("R", &[0, 1]).unwrap();
        assert!(std::sync::Arc::ptr_eq(&t1, &t3));
        assert_eq!(c.indexes().stats().builds, 2);

        // Replacing R drops only R's indexes; S stays warm.
        let s_rel = c.get("S").unwrap().clone();
        let mut b3 = RelationBuilder::new(Schema::new(["a", "b"]));
        b3.push_ints(&[5, 6], 0.0);
        c.register("R", b3.finish());
        let old_r = t1;
        assert!(!c.indexes().probe(c.get("R").unwrap(), &[0, 1]));
        assert!(c.indexes().probe(&s_rel, &[0, 1]), "S index survives");
        drop(old_r);

        // Removing S drops its index too.
        c.remove("S");
        assert_eq!(c.indexes().stats().entries, 0);
    }

    #[test]
    fn append_and_compact_are_typed_and_relation_scoped() {
        use crate::index_catalog::IndexProvider;
        let mut c = Catalog::new();
        let mut b = RelationBuilder::new(Schema::new(["a", "b"]));
        b.push_ints(&[1, 2], 0.0);
        c.register("R", b.finish());
        let mut b2 = RelationBuilder::new(Schema::new(["a", "b"]));
        b2.push_ints(&[9, 9], 0.0);
        c.register("S", b2.finish());
        let s_rel = c.get("S").unwrap().clone();
        c.index("R", &[0, 1]).unwrap();
        c.index("S", &[0, 1]).unwrap();

        // Typed failures: unknown relation, arity mismatch.
        let batch = {
            let mut b = RelationBuilder::new(Schema::new(["a", "b"]));
            b.push_ints(&[3, 4], 0.5);
            b.finish()
        };
        assert_eq!(
            c.append("T", batch.clone()).err(),
            Some(StorageError::RelationNotFound { name: "T".into() })
        );
        let wide = {
            let mut b = RelationBuilder::new(Schema::new(["a", "b", "c"]));
            b.push_ints(&[1, 2, 3], 0.0);
            b.finish()
        };
        assert_eq!(
            c.append("R", wide).err(),
            Some(StorageError::ArityMismatch {
                name: "R".into(),
                expected: 2,
                got: 3,
            })
        );

        // A successful append leaves the base (and its index) alone.
        let base = c.get("R").unwrap().clone();
        c.append("R", batch).unwrap();
        assert!(c.get("R").unwrap().shares_payload(&base), "get is the base");
        assert_eq!(c.entry("R").unwrap().delta_rows(), 1);
        assert!(c.indexes().probe(&base, &[0, 1]), "base index stays warm");

        // Compaction swaps in a fresh base and drops only R's indexes.
        assert_eq!(c.compact("R"), Ok(true));
        assert_eq!(c.compact("R"), Ok(false), "second compact is a no-op");
        let flat = c.get("R").unwrap().clone();
        assert_eq!(flat.len(), 2);
        assert!(!c.entry("R").unwrap().has_deltas());
        assert!(!c.indexes().probe(&base, &[0, 1]), "old base index dropped");
        assert!(c.indexes().probe(&s_rel, &[0, 1]), "S index survives");
        assert_eq!(
            c.compact("T").err(),
            Some(StorageError::RelationNotFound { name: "T".into() })
        );
    }

    #[test]
    fn remove_returns_flattened_content() {
        let mut c = Catalog::new();
        let mut b = RelationBuilder::new(Schema::new(["a"]));
        b.push_ints(&[1], 0.0);
        c.register("R", b.finish());
        let mut d = RelationBuilder::new(Schema::new(["a"]));
        d.push_ints(&[2], 0.0);
        c.append("R", d.finish()).unwrap();
        let gone = c.remove("R").unwrap();
        assert_eq!(gone.len(), 2, "remove hands back base ⊎ deltas");
        assert!(c.get("R").is_none());
    }

    #[test]
    fn interning_is_stable() {
        let mut c = Catalog::new();
        let a = c.intern("alice");
        let b = c.intern("bob");
        let a2 = c.intern("alice");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.resolve(a), Some("alice"));
        assert_eq!(c.resolve(Value::Int(1)), None);
    }
}
