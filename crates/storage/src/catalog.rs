//! A catalog of named relations plus the string dictionary backing
//! [`Value::Sym`].

use crate::error::StorageError;
use crate::fxhash::FxHashMap;
use crate::relation::Relation;
use crate::value::Value;

/// Named relations + string interning.
///
/// Relations are [`Relation`] *handles*: [`Catalog::get`] /
/// [`Catalog::lookup`] return references whose `clone()` is a refcount
/// bump, never an `O(n)` tuple copy — resolution hands out shared
/// payloads. Cloning the whole catalog likewise shares every relation
/// payload (the engine's copy-on-write epoch seam relies on this).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    relations: FxHashMap<String, Relation>,
    symbols: Vec<String>,
    symbol_ids: FxHashMap<String, u32>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) a relation under `name`.
    pub fn register<S: Into<String>>(&mut self, name: S, rel: Relation) {
        self.relations.insert(name.into(), rel);
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Look up a relation by name, with a typed error for absence —
    /// the non-panicking seam the engine layer routes through.
    pub fn lookup(&self, name: &str) -> Result<&Relation, StorageError> {
        self.get(name)
            .ok_or_else(|| StorageError::RelationNotFound {
                name: name.to_string(),
            })
    }

    /// Remove a relation, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Names of all registered relations (unspecified order).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Intern a string, returning its symbol value.
    pub fn intern<S: AsRef<str>>(&mut self, s: S) -> Value {
        let s = s.as_ref();
        if let Some(&id) = self.symbol_ids.get(s) {
            return Value::Sym(id);
        }
        let id = self.symbols.len() as u32;
        self.symbols.push(s.to_string());
        self.symbol_ids.insert(s.to_string(), id);
        Value::Sym(id)
    }

    /// Resolve a symbol back to its string.
    pub fn resolve(&self, v: Value) -> Option<&str> {
        match v {
            Value::Sym(id) => self.symbols.get(id as usize).map(String::as_str),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::Schema;

    #[test]
    fn register_and_get() {
        let mut c = Catalog::new();
        let mut b = RelationBuilder::new(Schema::new(["a"]));
        b.push_ints(&[1], 0.0);
        c.register("R", b.finish());
        assert_eq!(c.lookup("R").map(Relation::len), Ok(1));
        assert_eq!(
            c.lookup("S").err(),
            Some(StorageError::RelationNotFound { name: "S".into() })
        );
        assert!(c.get("S").is_none());
        assert_eq!(c.names().collect::<Vec<_>>(), vec!["R"]);
        assert_eq!(c.remove("R").map(|r| r.len()), Some(1));
    }

    #[test]
    fn interning_is_stable() {
        let mut c = Catalog::new();
        let a = c.intern("alice");
        let b = c.intern("bob");
        let a2 = c.intern("alice");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.resolve(a), Some("alice"));
        assert_eq!(c.resolve(Value::Int(1)), None);
    }
}
