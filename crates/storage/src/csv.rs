//! Minimal CSV import/export for relations — enough for a downstream
//! user to load a weighted edge list and run the library on real data.
//!
//! Format: header row = attribute names, one trailing `weight` column;
//! integer cells become [`Value::Int`], anything parseable as float
//! becomes [`Value::Float`], everything else is rejected (symbols
//! require a catalog; use [`read_csv_with_catalog`]). No quoting or
//! escaping — this is a data-loading convenience, not a CSV library.

use crate::catalog::Catalog;
use crate::relation::{Relation, RelationBuilder};
use crate::schema::Schema;
use crate::value::{Value, Weight};
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem (missing header, ragged row, bad cell).
    Parse(String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn parse_cell(cell: &str, catalog: Option<&mut Catalog>) -> Result<Value, CsvError> {
    let cell = cell.trim();
    if let Ok(i) = cell.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = cell.parse::<f64>() {
        if !f.is_nan() {
            return Ok(Value::float(f));
        }
    }
    match catalog {
        Some(c) => Ok(c.intern(cell)),
        None => Err(CsvError::Parse(format!(
            "cell `{cell}` is not numeric (pass a catalog to intern strings)"
        ))),
    }
}

fn read_impl<R: Read>(reader: R, mut catalog: Option<&mut Catalog>) -> Result<Relation, CsvError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| CsvError::Parse("empty input: missing header".into()))??;
    let cols: Vec<&str> = header.split(',').map(str::trim).collect();
    if cols.len() < 2 || *cols.last().unwrap() != "weight" {
        return Err(CsvError::Parse(
            "header must be `attr1,...,attrN,weight`".into(),
        ));
    }
    let arity = cols.len() - 1;
    let schema = Schema::new(cols[..arity].iter().map(|s| s.to_string()));
    let mut b = RelationBuilder::new(schema);
    let mut row: Vec<Value> = Vec::with_capacity(arity);
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != arity + 1 {
            return Err(CsvError::Parse(format!(
                "row {} has {} cells, expected {}",
                lineno + 2,
                cells.len(),
                arity + 1
            )));
        }
        row.clear();
        for cell in &cells[..arity] {
            row.push(parse_cell(cell, catalog.as_deref_mut())?);
        }
        let w: f64 = cells[arity].trim().parse().map_err(|_| {
            CsvError::Parse(format!("row {}: bad weight `{}`", lineno + 2, cells[arity]))
        })?;
        if w.is_nan() {
            return Err(CsvError::Parse(format!("row {}: NaN weight", lineno + 2)));
        }
        b.push(&row, Weight::new(w));
    }
    Ok(b.finish())
}

/// Read a weighted relation from CSV (numeric cells only).
pub fn read_csv<R: Read>(reader: R) -> Result<Relation, CsvError> {
    read_impl(reader, None)
}

/// Read a weighted relation from CSV, interning non-numeric cells as
/// symbols in `catalog`.
pub fn read_csv_with_catalog<R: Read>(
    reader: R,
    catalog: &mut Catalog,
) -> Result<Relation, CsvError> {
    read_impl(reader, Some(catalog))
}

/// Write a relation as CSV (schema columns + `weight`). Symbols are
/// resolved through `catalog` when given, else emitted as `#id`.
pub fn write_csv<W: Write>(
    rel: &Relation,
    catalog: Option<&Catalog>,
    out: &mut W,
) -> Result<(), CsvError> {
    let mut header: Vec<String> = rel.schema().attrs().to_vec();
    header.push("weight".into());
    writeln!(out, "{}", header.join(","))?;
    for (_, row, w) in rel.iter() {
        let mut cells: Vec<String> = Vec::with_capacity(row.len() + 1);
        for v in row {
            let cell = match (v, catalog) {
                (Value::Sym(_), Some(c)) => c
                    .resolve(*v)
                    .map(str::to_string)
                    .unwrap_or_else(|| v.to_string()),
                _ => v.to_string(),
            };
            cells.push(cell);
        }
        cells.push(w.get().to_string());
        writeln!(out, "{}", cells.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_numeric() {
        let csv = "src,dst,weight\n1,2,0.5\n3,4,1.25\n";
        let rel = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.row(0), &[Value::Int(1), Value::Int(2)]);
        assert_eq!(rel.weight(1), Weight::new(1.25));
        let mut out = Vec::new();
        write_csv(&rel, None, &mut out).unwrap();
        let rel2 = read_csv(&out[..]).unwrap();
        assert_eq!(rel2.len(), 2);
        assert_eq!(rel2.row(1), rel.row(1));
    }

    #[test]
    fn strings_need_catalog() {
        let csv = "name,dst,weight\nalice,2,0.5\n";
        assert!(read_csv(csv.as_bytes()).is_err());
        let mut cat = Catalog::new();
        let rel = read_csv_with_catalog(csv.as_bytes(), &mut cat).unwrap();
        assert_eq!(cat.resolve(rel.row(0)[0]), Some("alice"));
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "a,b,weight\n1,2\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn missing_weight_column_rejected() {
        let csv = "a,b\n1,2\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "a,weight\n1,0.5\n\n2,0.25\n";
        let rel = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn float_cells() {
        let csv = "x,weight\n1.5,2.0\n";
        let rel = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(rel.row(0)[0], Value::float(1.5));
    }

    #[test]
    fn symbol_roundtrip_through_catalog() {
        let mut cat = Catalog::new();
        let csv = "who,weight\nbob,1\nalice,2\n";
        let rel = read_csv_with_catalog(csv.as_bytes(), &mut cat).unwrap();
        let mut out = Vec::new();
        write_csv(&rel, Some(&cat), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("bob,1"));
        assert!(text.contains("alice,2"));
    }
}
