//! Delta-backed relations: an immutable base payload plus an
//! append-only sequence of `Arc`-shared delta batches.
//!
//! The serving stack treats relation payloads as immutable — prepared
//! queries, shared trie indexes, and open streams all hold `Arc`
//! handles and rely on the payload never changing underneath them. A
//! [`DeltaRelation`] makes the *named* relation mutable without
//! breaking that contract: an append pushes a fresh immutable batch
//! payload onto the delta sequence (`O(batch)`, never a base rewrite),
//! and readers that captured the previous handle set keep streaming
//! exactly the rows they started with (snapshot isolation).
//!
//! Ranked enumeration composes under union (the TODS companion paper's
//! observation): the full content `base ⊎ δ₁ ⊎ … ⊎ δ_d` is served by
//! merging per-source ranked streams, so deltas never force a
//! re-preparation of the base. Once the delta tail outweighs the base,
//! [`DeltaRelation::compact`] folds everything into one fresh payload
//! and the merge degenerates back to a single cursor.

use crate::relation::Relation;

/// Compaction floor: deltas are folded into the base only once the
/// delta tail holds at least this many rows *and* at least as many
/// rows as the base ([`DeltaRelation::should_compact`]). The floor
/// keeps tiny relations from compacting on every append; the
/// base-proportional part bounds the merge fan-in so a delta-bearing
/// relation never holds more than ~half its rows outside the base.
pub const MIN_COMPACT_ROWS: usize = 1024;

/// An immutable base [`Relation`] plus an append-only sequence of
/// delta batches. Every source (base and each delta) is an `Arc`-shared
/// immutable payload; cloning the whole entry is a handful of refcount
/// bumps, which is how catalog snapshots stay `O(#relations)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRelation {
    base: Relation,
    deltas: Vec<Relation>,
    delta_rows: usize,
}

impl DeltaRelation {
    /// A delta-free entry over `base`.
    pub fn new(base: Relation) -> Self {
        DeltaRelation {
            base,
            deltas: Vec::new(),
            delta_rows: 0,
        }
    }

    /// The immutable base payload (what [`Catalog::get`] hands out).
    ///
    /// [`Catalog::get`]: crate::Catalog::get
    #[inline]
    pub fn base(&self) -> &Relation {
        &self.base
    }

    /// The delta batches, oldest first.
    #[inline]
    pub fn deltas(&self) -> &[Relation] {
        &self.deltas
    }

    /// True iff at least one delta batch is pending.
    #[inline]
    pub fn has_deltas(&self) -> bool {
        !self.deltas.is_empty()
    }

    /// Total rows across all delta batches.
    #[inline]
    pub fn delta_rows(&self) -> usize {
        self.delta_rows
    }

    /// Total rows across base and deltas — the row count of
    /// [`DeltaRelation::flatten`].
    #[inline]
    pub fn total_rows(&self) -> usize {
        self.base.len() + self.delta_rows
    }

    /// Append one immutable batch (`O(1)` — the batch payload is
    /// adopted as-is, never copied into the base). Empty batches are
    /// dropped: they would add a merge cursor without adding rows.
    ///
    /// The caller (the catalog) has already checked arity; this seam
    /// only debug-asserts it.
    pub fn push(&mut self, batch: Relation) {
        debug_assert_eq!(batch.arity(), self.base.arity(), "delta arity mismatch");
        if batch.is_empty() {
            return;
        }
        self.delta_rows += batch.len();
        self.deltas.push(batch);
    }

    /// All sources, base first then deltas oldest-first — the cursor
    /// set a delta-aware prepare merges, and the row order
    /// [`DeltaRelation::flatten`] preserves.
    pub fn sources(&self) -> impl Iterator<Item = &Relation> {
        std::iter::once(&self.base).chain(self.deltas.iter())
    }

    /// Payload ids of every source, in [`DeltaRelation::sources`]
    /// order — the plan-cache dependency fingerprint: a cached plan is
    /// valid iff every relation it reads still has exactly the source
    /// ids it was prepared against.
    pub fn source_ids(&self) -> Vec<u64> {
        self.sources().map(Relation::payload_id).collect()
    }

    /// One relation holding base rows then delta rows, in source
    /// order. Shares the base payload (refcount bump) when no deltas
    /// are pending; otherwise concatenates into a fresh payload.
    pub fn flatten(&self) -> Relation {
        if self.deltas.is_empty() {
            return self.base.clone();
        }
        let parts: Vec<Relation> = self.sources().cloned().collect();
        Relation::concat(&parts)
    }

    /// Should the next maintenance pass fold the deltas into the base?
    /// True once the delta tail holds at least [`MIN_COMPACT_ROWS`]
    /// rows and at least as many rows as the base.
    pub fn should_compact(&self) -> bool {
        self.delta_rows >= MIN_COMPACT_ROWS.max(self.base.len())
    }

    /// Fold all deltas into a fresh base payload (row order preserved:
    /// base rows, then deltas oldest-first — exactly the
    /// [`DeltaRelation::flatten`] order, so compaction never reorders
    /// what readers enumerate). Returns `false` (and does nothing, in
    /// particular does not reallocate the base) when no deltas are
    /// pending. Open readers holding the old source handles are
    /// untouched — their payloads stay alive until the last handle
    /// drops.
    pub fn compact(&mut self) -> bool {
        if self.deltas.is_empty() {
            return false;
        }
        self.base = self.flatten();
        self.deltas.clear();
        self.delta_rows = 0;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::Schema;
    use crate::value::Value;

    fn rel(rows: &[[i64; 2]]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["a", "b"]));
        for (i, r) in rows.iter().enumerate() {
            b.push_ints(r, i as f64 * 0.25);
        }
        b.finish()
    }

    #[test]
    fn append_is_adoption_not_rewrite() {
        let base = rel(&[[1, 10], [2, 20]]);
        let base_id = base.payload_id();
        let mut d = DeltaRelation::new(base);
        let batch = rel(&[[3, 30]]);
        let batch_id = batch.payload_id();
        d.push(batch);
        assert_eq!(d.base().payload_id(), base_id, "base never rewritten");
        assert_eq!(d.source_ids(), vec![base_id, batch_id]);
        assert_eq!(d.delta_rows(), 1);
        assert_eq!(d.total_rows(), 3);
    }

    #[test]
    fn empty_batches_are_dropped() {
        let mut d = DeltaRelation::new(rel(&[[1, 10]]));
        d.push(Relation::empty(Schema::new(["a", "b"])));
        assert!(!d.has_deltas());
        assert_eq!(d.delta_rows(), 0);
    }

    #[test]
    fn flatten_preserves_source_order_and_shares_when_delta_free() {
        let base = rel(&[[1, 10], [2, 20]]);
        let d0 = DeltaRelation::new(base.clone());
        assert!(d0.flatten().shares_payload(&base), "no deltas -> no copy");

        let mut d = DeltaRelation::new(base);
        d.push(rel(&[[3, 30]]));
        d.push(rel(&[[4, 40], [5, 50]]));
        let flat = d.flatten();
        assert_eq!(flat.len(), 5);
        assert_eq!(flat.row(0), &[Value::Int(1), Value::Int(10)]);
        assert_eq!(flat.row(2), &[Value::Int(3), Value::Int(30)]);
        assert_eq!(flat.row(4), &[Value::Int(5), Value::Int(50)]);
    }

    #[test]
    fn compact_folds_and_resets() {
        let mut d = DeltaRelation::new(rel(&[[1, 10]]));
        assert!(!d.compact(), "delta-free compact is a no-op");
        let kept_base = d.base().clone();
        d.push(rel(&[[2, 20]]));
        let flat = d.flatten();
        assert!(d.compact());
        assert!(!d.has_deltas());
        assert_eq!(d.delta_rows(), 0);
        assert_eq!(*d.base(), flat, "compaction is flatten");
        assert_ne!(
            d.base().payload_id(),
            kept_base.payload_id(),
            "compacted base is a fresh payload"
        );
        // The old base handle still serves its snapshot.
        assert_eq!(kept_base.len(), 1);
    }

    #[test]
    fn compaction_policy_needs_floor_and_parity() {
        let mut d = DeltaRelation::new(rel(&[[1, 1]]));
        d.push(rel(&[[2, 2]]));
        assert!(
            !d.should_compact(),
            "tiny relations stay delta-backed below the floor"
        );

        let big: Vec<[i64; 2]> = (0..MIN_COMPACT_ROWS as i64).map(|i| [i, i]).collect();
        let mut d = DeltaRelation::new(rel(&[[1, 1]]));
        d.push(Relation::from_rows(
            Schema::new(["a", "b"]),
            &big.iter()
                .map(|r| [Value::Int(r[0]), Value::Int(r[1])])
                .collect::<Vec<_>>(),
            &vec![crate::value::Weight::ZERO; big.len()],
        ));
        assert!(d.should_compact(), "floor reached and deltas >= base");
    }
}
