//! Typed storage errors — the non-panicking side of catalog and schema
//! lookups, threaded up to `anyk_engine::EngineError` by the unified
//! entry point.

use std::error::Error;
use std::fmt;

/// A failed storage-layer lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// No relation registered under this name in the catalog.
    RelationNotFound {
        /// The name that was looked up.
        name: String,
    },
    /// The schema has no attribute with this name.
    AttributeNotFound {
        /// The attribute that was looked up.
        attr: String,
        /// Display form of the schema searched (e.g. `(a, b, c)`).
        schema: String,
    },
    /// An append batch whose arity does not match the target relation.
    ArityMismatch {
        /// The relation appended to.
        name: String,
        /// The relation's arity.
        expected: usize,
        /// The batch's arity.
        got: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::RelationNotFound { name } => {
                write!(f, "relation `{name}` not registered in catalog")
            }
            StorageError::AttributeNotFound { attr, schema } => {
                write!(f, "attribute `{attr}` not in schema {schema}")
            }
            StorageError::ArityMismatch {
                name,
                expected,
                got,
            } => {
                write!(
                    f,
                    "append to `{name}`: batch arity {got} does not match relation arity {expected}"
                )
            }
        }
    }
}

impl Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::RelationNotFound { name: "R".into() };
        assert_eq!(e.to_string(), "relation `R` not registered in catalog");
        let e = StorageError::AttributeNotFound {
            attr: "x".into(),
            schema: "(a, b)".into(),
        };
        assert_eq!(e.to_string(), "attribute `x` not in schema (a, b)");
        let e = StorageError::ArityMismatch {
            name: "R".into(),
            expected: 2,
            got: 3,
        };
        assert_eq!(
            e.to_string(),
            "append to `R`: batch arity 3 does not match relation arity 2"
        );
    }
}
