//! Typed storage errors — the non-panicking side of catalog and schema
//! lookups, threaded up to `anyk_engine::EngineError` by the unified
//! entry point.

use std::error::Error;
use std::fmt;

/// A failed storage-layer lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// No relation registered under this name in the catalog.
    RelationNotFound {
        /// The name that was looked up.
        name: String,
    },
    /// The schema has no attribute with this name.
    AttributeNotFound {
        /// The attribute that was looked up.
        attr: String,
        /// Display form of the schema searched (e.g. `(a, b, c)`).
        schema: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::RelationNotFound { name } => {
                write!(f, "relation `{name}` not registered in catalog")
            }
            StorageError::AttributeNotFound { attr, schema } => {
                write!(f, "attribute `{attr}` not in schema {schema}")
            }
        }
    }
}

impl Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::RelationNotFound { name: "R".into() };
        assert_eq!(e.to_string(), "relation `R` not registered in catalog");
        let e = StorageError::AttributeNotFound {
            attr: "x".into(),
            schema: "(a, b)".into(),
        };
        assert_eq!(e.to_string(), "attribute `x` not in schema (a, b)");
    }
}
