//! A fast, non-cryptographic hasher in the style of `rustc`'s FxHash.
//!
//! The standard library's default SipHash is DoS-resistant but measurably
//! slow for the short integer keys that dominate join processing. Join
//! algorithms hash *billions* of small keys, so we follow the Rust
//! performance guide and use an Fx-style multiply-rotate hash. The
//! algorithm is tiny, so we implement it locally instead of pulling an
//! extra dependency.
//!
//! Not suitable for hostile input (no HashDoS protection) — fine for a
//! research/benchmarking library operating on trusted data.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A streaming Fx-style hasher: `state = (rotl(state, 5) ^ word) * SEED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the fast Fx hasher. Drop-in for `std::HashMap`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the fast Fx hasher. Drop-in for `std::HashSet`.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hash a single `u64` without constructing a hasher (hot paths).
#[inline]
pub fn hash_u64(v: u64) -> u64 {
    (v.rotate_left(ROTATE)).wrapping_mul(SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_values() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn byte_stream_matches_word_writes_for_collision_quality() {
        // Not equality (chunking differs) — just sanity that nearby byte
        // strings do not trivially collide.
        let mut seen = FxHashSet::default();
        for i in 0u64..4096 {
            let mut h = FxHasher::default();
            h.write(&i.to_le_bytes());
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 4096);
    }

    #[test]
    fn hash_u64_spreads_low_bits() {
        // Consecutive keys must differ in high bits (used by hashbrown).
        let a = hash_u64(1) >> 48;
        let b = hash_u64(2) >> 48;
        let c = hash_u64(3) >> 48;
        assert!(!(a == b && b == c));
    }
}
