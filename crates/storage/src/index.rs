//! Join-key indexes over relations.
//!
//! * [`HashIndex`] — equi-join lookups: key values → group of row ids.
//! * [`SortedIndex`] — ordered access: binary-search range per key, plus
//!   ordered iteration (used by sort-merge style operators and by
//!   sorted-access top-k algorithms).
//!
//! Both are built *at query time*; the construction cost is part of every
//! algorithm's measured cost, matching the paper's RAM-model accounting.

use crate::fxhash::FxHashMap;
use crate::relation::{Relation, RowId};
use crate::value::Value;

/// A hash index from join-key values to the row ids sharing that key.
///
/// Group storage is flattened: `groups` maps each key to a `(start, len)`
/// range in `rows`, so a lookup returns a contiguous `&[RowId]` without
/// per-group heap allocations.
#[derive(Debug)]
pub struct HashIndex {
    key_positions: Vec<usize>,
    groups: FxHashMap<Box<[Value]>, (u32, u32)>,
    rows: Vec<RowId>,
}

impl HashIndex {
    /// Build over `rel` keyed by the attributes at `key_positions`.
    pub fn build(rel: &Relation, key_positions: &[usize]) -> Self {
        // Two passes: count group sizes, then fill — keeps `rows` compact.
        let mut counts: FxHashMap<Box<[Value]>, u32> = FxHashMap::default();
        counts.reserve(rel.len());
        let mut key = Vec::with_capacity(key_positions.len());
        for i in 0..rel.len() as RowId {
            rel.key_into(i, key_positions, &mut key);
            if let Some(c) = counts.get_mut(key.as_slice()) {
                *c += 1;
            } else {
                counts.insert(key.clone().into_boxed_slice(), 1);
            }
        }
        let mut groups: FxHashMap<Box<[Value]>, (u32, u32)> = FxHashMap::default();
        groups.reserve(counts.len());
        let mut start = 0u32;
        for (k, c) in counts {
            groups.insert(k, (start, c));
            start += c;
        }
        let mut rows = vec![0 as RowId; start as usize];
        // Per-group fill offsets, keyed by owned key.
        let mut offsets: FxHashMap<Box<[Value]>, u32> = FxHashMap::default();
        offsets.reserve(groups.len());
        for i in 0..rel.len() as RowId {
            rel.key_into(i, key_positions, &mut key);
            let (start, _) = groups[key.as_slice()];
            let off = offsets.entry(key.clone().into_boxed_slice()).or_insert(0);
            rows[(start + *off) as usize] = i;
            *off += 1;
        }
        HashIndex {
            key_positions: key_positions.to_vec(),
            groups,
            rows,
        }
    }

    /// The key positions this index is built on.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_positions
    }

    /// Row ids whose key equals `key` (empty slice if absent).
    #[inline]
    pub fn get(&self, key: &[Value]) -> &[RowId] {
        match self.groups.get(key) {
            Some(&(start, len)) => &self.rows[start as usize..(start + len) as usize],
            None => &[],
        }
    }

    /// Does any row have this key?
    #[inline]
    pub fn contains(&self, key: &[Value]) -> bool {
        self.groups.contains_key(key)
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.groups.len()
    }

    /// Iterate `(key, group)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], &[RowId])> + '_ {
        self.groups.iter().map(move |(k, &(start, len))| {
            (
                k.as_ref(),
                &self.rows[start as usize..(start + len) as usize],
            )
        })
    }

    /// The size of the largest group (skew diagnostic / heavy-hitter cutoff).
    pub fn max_group_len(&self) -> usize {
        self.groups
            .values()
            .map(|&(_, l)| l as usize)
            .max()
            .unwrap_or(0)
    }
}

/// A sorted index: row ids ordered by the key attributes, with
/// binary-search range lookup.
#[derive(Debug)]
pub struct SortedIndex {
    key_positions: Vec<usize>,
    /// Row ids sorted by key (ties by row id).
    order: Vec<RowId>,
}

impl SortedIndex {
    /// Build over `rel` ordered by the attributes at `key_positions`.
    pub fn build(rel: &Relation, key_positions: &[usize]) -> Self {
        let mut order: Vec<RowId> = (0..rel.len() as RowId).collect();
        order.sort_by(|&x, &y| {
            let rx = rel.row(x);
            let ry = rel.row(y);
            for &p in key_positions {
                match rx[p].cmp(&ry[p]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            x.cmp(&y)
        });
        SortedIndex {
            key_positions: key_positions.to_vec(),
            order,
        }
    }

    /// All row ids in key order.
    pub fn ordered_rows(&self) -> &[RowId] {
        &self.order
    }

    /// The contiguous range of rows (in index order) whose key equals
    /// `key`.
    pub fn range(&self, rel: &Relation, key: &[Value]) -> &[RowId] {
        debug_assert_eq!(key.len(), self.key_positions.len());
        let cmp_key = |rid: &RowId| {
            let row = rel.row(*rid);
            for (i, &p) in self.key_positions.iter().enumerate() {
                match row[p].cmp(&key[i]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        };
        let lo = self
            .order
            .partition_point(|r| cmp_key(r) == std::cmp::Ordering::Less);
        let hi = self.order[lo..].partition_point(|r| cmp_key(r) == std::cmp::Ordering::Equal) + lo;
        &self.order[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::Schema;

    fn rel() -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["a", "b"]));
        b.push_ints(&[1, 10], 0.0);
        b.push_ints(&[2, 20], 0.0);
        b.push_ints(&[1, 30], 0.0);
        b.push_ints(&[3, 10], 0.0);
        b.finish()
    }

    #[test]
    fn hash_index_groups() {
        let r = rel();
        let idx = HashIndex::build(&r, &[0]);
        let g1: Vec<RowId> = {
            let mut v = idx.get(&[Value::Int(1)]).to_vec();
            v.sort();
            v
        };
        assert_eq!(g1, vec![0, 2]);
        assert_eq!(idx.get(&[Value::Int(9)]), &[] as &[RowId]);
        assert_eq!(idx.num_keys(), 3);
        assert!(idx.contains(&[Value::Int(3)]));
        assert_eq!(idx.max_group_len(), 2);
    }

    #[test]
    fn hash_index_composite_key() {
        let r = rel();
        let idx = HashIndex::build(&r, &[0, 1]);
        assert_eq!(idx.get(&[Value::Int(1), Value::Int(30)]), &[2]);
        assert_eq!(idx.num_keys(), 4);
    }

    #[test]
    fn hash_index_iter_covers_all_rows() {
        let r = rel();
        let idx = HashIndex::build(&r, &[1]);
        let total: usize = idx.iter().map(|(_, g)| g.len()).sum();
        assert_eq!(total, r.len());
    }

    #[test]
    fn sorted_index_orders_and_ranges() {
        let r = rel();
        let idx = SortedIndex::build(&r, &[1]);
        let ordered: Vec<i64> = idx
            .ordered_rows()
            .iter()
            .map(|&rid| r.row(rid)[1].int())
            .collect();
        assert_eq!(ordered, vec![10, 10, 20, 30]);
        let range = idx.range(&r, &[Value::Int(10)]);
        assert_eq!(range.len(), 2);
        assert!(idx.range(&r, &[Value::Int(99)]).is_empty());
    }

    #[test]
    fn empty_relation_indexes() {
        let r = Relation::empty(Schema::new(["a"]));
        let h = HashIndex::build(&r, &[0]);
        assert_eq!(h.num_keys(), 0);
        let s = SortedIndex::build(&r, &[0]);
        assert!(s.ordered_rows().is_empty());
    }
}
