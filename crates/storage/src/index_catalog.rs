//! Catalog-resident shared trie indexes: prepare-time index *lookup*
//! instead of per-plan index *build*.
//!
//! Every worst-case-optimal route used to pay [`Trie::build`] per
//! prepared plan — `O(n log n)` sorting work re-materializing structure
//! the catalog could own once. The [`IndexCatalog`] owns that
//! structure: persistent, `Arc`-shared tries keyed by **payload
//! identity** plus a canonical attribute order, populated lazily on
//! first demand and deduplicated across plans (a second plan wanting
//! the same order is a refcount bump, zero copies).
//!
//! Keying details:
//!
//! * **Payload identity, not name + epoch.** A [`Relation`] handle
//!   names immutable tuple storage via [`Relation::payload_id`]; the
//!   id changes whenever the payload diverges (copy-on-write) and is
//!   never reused within a process. Indexes keyed this way can never
//!   serve stale data — an updated relation has a new payload id, so a
//!   lookup for it simply misses — and catalog snapshots taken at
//!   different epochs share indexes for every relation they have in
//!   common.
//! * **Canonical full-permutation orders.** A request for a *prefix*
//!   order (say `[1]` on a binary relation) is extended with the
//!   remaining columns ascending (`[1, 0]`) before keying, so
//!   order-compatible prefixes reuse one trie. Consumers walk only the
//!   levels they asked for and collect matching rows with
//!   [`Trie::rows_below`], which is level-agnostic.
//!
//! Memory is bounded by a bytes-estimate LRU cap (mirroring the
//! engine's plan cache): each resident trie is accounted at
//! [`Trie::memory_bytes`], and building past the cap evicts the
//! least-recently-used resident indexes. Recency is a **logical tick**
//! (this is a deterministic library crate — no wall clocks).
//! [`IndexCatalog::invalidate_payload`] drops exactly the entries of
//! one payload — the relation-scoped invalidation hook
//! [`Catalog::register`](crate::Catalog::register) and
//! [`Catalog::remove`](crate::Catalog::remove) call on replacement.

use crate::fxhash::FxHashMap;
use crate::relation::Relation;
use crate::trie::Trie;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Resolves the sorted trie a join algorithm wants over a relation.
///
/// The two implementations are [`IndexCatalog`] (shared, cached — the
/// serving path) and [`BuildEachTime`] (a fresh private build per
/// request — the standalone/baseline path). Join algorithms take
/// `&dyn IndexProvider` so callers choose the policy.
pub trait IndexProvider {
    /// A trie over `rel` whose first levels follow `positions` (the
    /// provider may return a *deeper* trie sharing that prefix; walk
    /// only the levels you asked for and emit via
    /// [`Trie::rows_below`]).
    fn trie(&self, rel: &Relation, positions: &[usize]) -> Arc<Trie>;

    /// Would [`IndexProvider::trie`] for this request be served without
    /// building (i.e. is it already resident)? Must not build anything
    /// — this is the `EXPLAIN index=cached|built` probe.
    fn probe(&self, rel: &Relation, positions: &[usize]) -> bool;
}

/// The no-cache provider: builds a fresh trie per request, over exactly
/// the requested positions. This is the pre-catalog behavior, kept as
/// the baseline for benchmarks and for ephemeral relations (e.g. a
/// repeated-variable prefilter that actually dropped rows) whose tries
/// must not pollute the shared catalog.
#[derive(Debug, Default, Clone, Copy)]
pub struct BuildEachTime;

impl IndexProvider for BuildEachTime {
    fn trie(&self, rel: &Relation, positions: &[usize]) -> Arc<Trie> {
        Arc::new(Trie::build(rel, positions))
    }

    fn probe(&self, _rel: &Relation, _positions: &[usize]) -> bool {
        false
    }
}

/// Default byte budget for resident indexes (mirrors the plan cache's
/// bounded-by-default policy).
pub const DEFAULT_INDEX_CATALOG_BYTES: usize = 256 << 20;

/// Counters describing the index catalog's behavior, surfaced through
/// `Engine::index_stats()` and the server's `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Requests served by an existing (or in-flight) shared trie.
    pub hits: u64,
    /// Requests that had to install a new entry.
    pub misses: u64,
    /// Tries actually constructed (≤ misses: concurrent requests for
    /// the same key collapse into one build).
    pub builds: u64,
    /// Resident tries dropped by the LRU byte cap (invalidations are
    /// not evictions).
    pub evictions: u64,
    /// Estimated bytes of all resident tries.
    pub resident_bytes: u64,
    /// Number of resident index entries.
    pub entries: usize,
    /// The byte budget evictions enforce.
    pub capacity_bytes: u64,
}

type IndexKey = (u64, Vec<usize>);

#[derive(Debug)]
struct Entry {
    /// Build-exactly-once cell: the map lock is released while the
    /// winning thread builds, so same-key waiters block on the cell
    /// (not the whole catalog) and every other key stays available.
    cell: Arc<OnceLock<Arc<Trie>>>,
    /// `memory_bytes` of the built trie; 0 while the build is in
    /// flight (in-flight entries are not yet accounted or evictable).
    bytes: usize,
    /// Logical recency for LRU eviction.
    last_used: u64,
}

#[derive(Debug)]
struct Inner {
    map: FxHashMap<IndexKey, Entry>,
    tick: u64,
    capacity_bytes: usize,
    resident_bytes: usize,
    hits: u64,
    misses: u64,
    builds: u64,
    evictions: u64,
}

/// The shared, lazily-populated, LRU-bounded trie index store (see
/// module docs). `Catalog` holds one behind an `Arc`, so catalog
/// clones — including the engine's copy-on-write epoch snapshots —
/// share the same warm indexes.
#[derive(Debug)]
pub struct IndexCatalog {
    inner: Mutex<Inner>,
}

impl Default for IndexCatalog {
    fn default() -> Self {
        IndexCatalog::with_capacity(DEFAULT_INDEX_CATALOG_BYTES)
    }
}

/// Extend `positions` with the remaining columns (ascending) into the
/// canonical full-permutation trie order.
fn canonical_positions(arity: usize, positions: &[usize]) -> Vec<usize> {
    debug_assert!(positions.iter().all(|&p| p < arity));
    let mut canon = Vec::with_capacity(arity);
    canon.extend_from_slice(positions);
    for p in 0..arity {
        if !positions.contains(&p) {
            canon.push(p);
        }
    }
    canon
}

impl IndexCatalog {
    /// An empty catalog with the given resident-bytes budget.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        IndexCatalog {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                tick: 0,
                capacity_bytes,
                resident_bytes: 0,
                hits: 0,
                misses: 0,
                builds: 0,
                evictions: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current counters (see [`IndexStats`]).
    pub fn stats(&self) -> IndexStats {
        let inner = self.lock();
        IndexStats {
            hits: inner.hits,
            misses: inner.misses,
            builds: inner.builds,
            evictions: inner.evictions,
            resident_bytes: inner.resident_bytes as u64,
            entries: inner.map.len(),
            capacity_bytes: inner.capacity_bytes as u64,
        }
    }

    /// Change the byte budget, evicting LRU entries if the new budget
    /// is already exceeded.
    pub fn set_capacity(&self, capacity_bytes: usize) {
        let mut inner = self.lock();
        inner.capacity_bytes = capacity_bytes;
        Self::evict_over_capacity(&mut inner, None);
    }

    /// Drop every index built over the payload with this id (the
    /// relation-scoped invalidation seam: a replaced or removed
    /// relation's indexes drop; everything else stays warm). Returns
    /// the number of entries dropped.
    pub fn invalidate_payload(&self, payload_id: u64) -> usize {
        let mut inner = self.lock();
        let before = inner.map.len();
        let mut freed = 0usize;
        inner.map.retain(|(pid, _), e| {
            if *pid == payload_id {
                freed += e.bytes;
                false
            } else {
                true
            }
        });
        inner.resident_bytes -= freed;
        before - inner.map.len()
    }

    fn evict_over_capacity(inner: &mut Inner, keep: Option<&IndexKey>) {
        while inner.resident_bytes > inner.capacity_bytes {
            let victim = inner
                .map
                .iter()
                .filter(|(k, e)| e.bytes > 0 && keep != Some(*k))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(k) = victim else { break };
            if let Some(e) = inner.map.remove(&k) {
                inner.resident_bytes -= e.bytes;
                inner.evictions += 1;
            }
        }
    }
}

impl IndexProvider for IndexCatalog {
    fn trie(&self, rel: &Relation, positions: &[usize]) -> Arc<Trie> {
        let key: IndexKey = (
            rel.payload_id(),
            canonical_positions(rel.arity(), positions),
        );
        let cell = {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.map.get_mut(&key) {
                e.last_used = tick;
                let cell = Arc::clone(&e.cell);
                inner.hits += 1;
                cell
            } else {
                inner.misses += 1;
                let cell: Arc<OnceLock<Arc<Trie>>> = Arc::new(OnceLock::new());
                inner.map.insert(
                    key.clone(),
                    Entry {
                        cell: Arc::clone(&cell),
                        bytes: 0,
                        last_used: tick,
                    },
                );
                cell
            }
        };
        // Build outside the map lock: only same-key requesters wait.
        let mut built_here = false;
        let trie = Arc::clone(cell.get_or_init(|| {
            built_here = true;
            Arc::new(Trie::build(rel, &key.1))
        }));
        if built_here {
            let bytes = trie.memory_bytes();
            let mut inner = self.lock();
            inner.builds += 1;
            // The entry may have been invalidated while building; only
            // account bytes for entries still resident.
            if let Some(e) = inner.map.get_mut(&key) {
                e.bytes = bytes;
                inner.resident_bytes += bytes;
                Self::evict_over_capacity(&mut inner, Some(&key));
            }
        }
        trie
    }

    fn probe(&self, rel: &Relation, positions: &[usize]) -> bool {
        let key: IndexKey = (
            rel.payload_id(),
            canonical_positions(rel.arity(), positions),
        );
        let inner = self.lock();
        inner.map.get(&key).is_some_and(|e| e.cell.get().is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::Schema;
    use crate::value::Value;

    fn rel(rows: &[(i64, i64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["a", "b"]));
        for &(x, y) in rows {
            b.push_ints(&[x, y], 1.0);
        }
        b.finish()
    }

    #[test]
    fn second_request_is_a_hit_not_a_build() {
        let cat = IndexCatalog::default();
        let r = rel(&[(1, 2), (2, 3)]);
        let t1 = cat.trie(&r, &[0, 1]);
        let t2 = cat.trie(&r, &[0, 1]);
        assert!(Arc::ptr_eq(&t1, &t2), "same shared trie, refcount bump");
        let s = cat.stats();
        assert_eq!((s.hits, s.misses, s.builds), (1, 1, 1));
        assert_eq!(s.entries, 1);
        assert_eq!(s.resident_bytes, t1.memory_bytes() as u64);
    }

    #[test]
    fn prefix_orders_share_one_canonical_trie() {
        let cat = IndexCatalog::default();
        let r = rel(&[(1, 2), (2, 3), (1, 3)]);
        let full = cat.trie(&r, &[1, 0]);
        let prefix = cat.trie(&r, &[1]);
        assert!(Arc::ptr_eq(&full, &prefix));
        assert_eq!(cat.stats().builds, 1);
        // The prefix request still answers correctly via rows_below.
        let root = prefix.root();
        let i = prefix.find(root, Value::Int(3)).unwrap();
        assert_eq!(prefix.rows_below(root, i).len(), 2);
        // A different leading column is a different trie.
        let other = cat.trie(&r, &[0, 1]);
        assert!(!Arc::ptr_eq(&full, &other));
        assert_eq!(cat.stats().builds, 2);
    }

    #[test]
    fn distinct_payloads_do_not_alias() {
        let cat = IndexCatalog::default();
        let r1 = rel(&[(1, 2)]);
        let r2 = rel(&[(3, 4)]);
        let t1 = cat.trie(&r1, &[0, 1]);
        let t2 = cat.trie(&r2, &[0, 1]);
        assert!(!Arc::ptr_eq(&t1, &t2));
        // ...but shared handles (same payload) do alias, whatever the
        // atom name upstream.
        let t3 = cat.trie(&r1.clone(), &[0, 1]);
        assert!(Arc::ptr_eq(&t1, &t3));
    }

    #[test]
    fn invalidate_payload_is_relation_scoped() {
        let cat = IndexCatalog::default();
        let r1 = rel(&[(1, 2), (2, 3)]);
        let r2 = rel(&[(5, 6)]);
        cat.trie(&r1, &[0, 1]);
        cat.trie(&r1, &[1, 0]);
        let keep = cat.trie(&r2, &[0, 1]);
        assert_eq!(cat.stats().entries, 3);
        assert_eq!(cat.invalidate_payload(r1.payload_id()), 2);
        let s = cat.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.resident_bytes, keep.memory_bytes() as u64);
        assert!(cat.probe(&r2, &[0, 1]), "survivor stays warm");
        assert!(!cat.probe(&r1, &[0, 1]));
        // Invalidations are not evictions.
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn lru_cap_evicts_least_recently_used() {
        let r = rel(&[(1, 2), (2, 3), (3, 4)]);
        let one = Trie::build(&r, &[0, 1]).memory_bytes();
        // Room for two resident tries, not three.
        let cat = IndexCatalog::with_capacity(2 * one + one / 2);
        cat.trie(&r, &[0, 1]);
        cat.trie(&r, &[1, 0]);
        assert_eq!(cat.stats().entries, 2);
        // Touch [0,1] so [1,0] is the LRU victim.
        cat.trie(&r, &[0, 1]);
        let other = rel(&[(7, 8), (8, 9), (9, 7)]);
        cat.trie(&other, &[0, 1]);
        let s = cat.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(cat.probe(&r, &[0, 1]), "recently used survives");
        assert!(!cat.probe(&r, &[1, 0]), "LRU evicted");
        assert!(s.resident_bytes <= s.capacity_bytes);
    }

    #[test]
    fn probe_never_builds() {
        let cat = IndexCatalog::default();
        let r = rel(&[(1, 2)]);
        assert!(!cat.probe(&r, &[0, 1]));
        let s = cat.stats();
        assert_eq!((s.misses, s.builds, s.entries), (0, 0, 0));
    }

    #[test]
    fn build_each_time_is_always_fresh() {
        let p = BuildEachTime;
        let r = rel(&[(1, 2)]);
        let t1 = p.trie(&r, &[0, 1]);
        let t2 = p.trie(&r, &[0, 1]);
        assert!(!Arc::ptr_eq(&t1, &t2));
        assert!(!p.probe(&r, &[0, 1]));
    }

    #[test]
    fn concurrent_same_key_builds_exactly_once() {
        let cat = Arc::new(IndexCatalog::default());
        let r = rel(&[(1, 2), (2, 3), (3, 1), (1, 3)]);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cat = Arc::clone(&cat);
            let r = r.clone();
            handles.push(std::thread::spawn(move || cat.trie(&r, &[0, 1])));
        }
        let tries: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for t in &tries[1..] {
            assert!(Arc::ptr_eq(&tries[0], t));
        }
        let s = cat.stats();
        assert_eq!(s.builds, 1, "one build despite 8 concurrent requests");
        assert_eq!(s.hits + s.misses, 8);
    }
}
