//! # anyk-storage
//!
//! The relational substrate underlying the `anyk` project: compact values,
//! weighted in-memory relations, and the index structures (hash, sorted,
//! trie) that the join and ranked-enumeration algorithms are built on.
//!
//! The paper's complexity model (*Optimal Join Algorithms Meet Top-k*,
//! SIGMOD 2020) assumes no pre-built indexes at query time — algorithms
//! construct what they need and the construction cost counts. The
//! serving system relaxes that deliberately: the [`index_catalog`]
//! amortizes trie construction across prepared plans (first demand
//! pays, every later plan is a shared lookup), while the per-request
//! [`index_catalog::BuildEachTime`] provider preserves the paper's
//! build-per-plan accounting for baselines.
//!
//! ## Layout
//! * [`value`] — [`Value`] (copyable scalar) and
//!   [`Weight`] (totally ordered `f64`).
//! * [`schema`] — attribute names and positions.
//! * [`relation`] — row-major weighted relations and builders.
//! * [`delta`] — delta-backed relations: immutable base + append-only
//!   `Arc`-shared delta batches, with threshold-driven compaction.
//! * [`index`] — per-plan hash and sorted indexes over join keys.
//! * [`trie`] — sorted nested tries for worst-case-optimal joins.
//! * [`index_catalog`] — catalog-resident shared trie indexes
//!   (lazy, LRU-bounded, payload-identity keyed).
//! * [`partition`] — deterministic full-row hash partitioning of
//!   relations into shard fragments.
//! * [`catalog`] — named relations plus a string dictionary.
//! * [`csv`] — minimal CSV import/export for weighted relations.
//! * [`fxhash`] — the fast FxHash-style hasher used by all hot hash maps.

pub mod catalog;
pub mod csv;
pub mod delta;
pub mod error;
pub mod fxhash;
pub mod index;
pub mod index_catalog;
pub mod partition;
pub mod relation;
pub mod schema;
pub mod trie;
pub mod value;

pub use catalog::Catalog;
pub use csv::{read_csv, read_csv_with_catalog, write_csv};
pub use delta::{DeltaRelation, MIN_COMPACT_ROWS};
pub use error::StorageError;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use index::{HashIndex, SortedIndex};
pub use index_catalog::{
    BuildEachTime, IndexCatalog, IndexProvider, IndexStats, DEFAULT_INDEX_CATALOG_BYTES,
};
pub use partition::{partition_relation, shard_of_row};
pub use relation::{Relation, RelationBuilder, RowId};
pub use schema::Schema;
pub use trie::Trie;
pub use value::{FloatBits, Value, Weight};
