//! Deterministic hash partitioning of relations for sharded serving.
//!
//! A relation is split into `n` *fragments* by hashing the full tuple
//! (every value in the row) with the process-stable Fx hasher: rows with
//! equal values always land on the same fragment — duplicates co-locate,
//! so bag semantics survive sharding — and the assignment depends only
//! on the tuple values, never on row order, payload identity, or any
//! per-process random state. Two catalogs partitioned independently
//! agree fragment-by-fragment.
//!
//! Weights are carried through unchanged and schemas are shared, so the
//! fragments of a relation are themselves ordinary [`Relation`]s that
//! every join algorithm accepts unmodified.

use crate::fxhash::FxHasher;
use crate::relation::{Relation, RelationBuilder};
use crate::value::Value;
use std::hash::{Hash, Hasher};

/// The fragment (shard) index a row belongs to, in `0..shards`.
///
/// Deterministic in the row *values* only. `shards` must be non-zero.
#[inline]
pub fn shard_of_row(row: &[Value], shards: usize) -> usize {
    debug_assert!(shards > 0, "shard_of_row needs at least one shard");
    if shards == 1 {
        return 0;
    }
    let mut h = FxHasher::default();
    row.hash(&mut h);
    let bits = h.finish();
    // Fold the high bits in before reducing: Fx mixes upward, so the
    // top bits carry most of the entropy.
    ((bits ^ (bits >> 32)) % shards as u64) as usize
}

/// Split `rel` into `shards` fragments by full-row hash.
///
/// Every input row appears in exactly one fragment (same values, same
/// weight); concatenating the fragments is a permutation of the input.
/// Row order *within* a fragment preserves the input's relative order,
/// so the split is fully deterministic. Panics if `shards == 0`.
pub fn partition_relation(rel: &Relation, shards: usize) -> Vec<Relation> {
    assert!(shards > 0, "cannot partition into zero shards");
    if shards == 1 {
        return vec![rel.clone()];
    }
    let mut builders: Vec<RelationBuilder> = (0..shards)
        .map(|_| RelationBuilder::with_capacity(rel.schema().clone(), rel.len() / shards + 1))
        .collect();
    for (_, row, w) in rel.iter() {
        builders[shard_of_row(row, shards)].push(row, w);
    }
    builders.into_iter().map(RelationBuilder::finish).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Weight;

    fn sample(n: i64) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["a", "b"]));
        for i in 0..n {
            b.push_ints(&[i, i * 7 % 13], (i % 5) as f64);
        }
        b.finish()
    }

    fn rows_of(r: &Relation) -> Vec<(Vec<Value>, Weight)> {
        r.iter().map(|(_, row, w)| (row.to_vec(), w)).collect()
    }

    #[test]
    fn fragments_partition_the_relation() {
        let r = sample(200);
        for shards in [2usize, 3, 8] {
            let parts = partition_relation(&r, shards);
            assert_eq!(parts.len(), shards);
            let mut merged: Vec<_> = parts.iter().flat_map(rows_of).collect();
            let mut original = rows_of(&r);
            merged.sort();
            original.sort();
            assert_eq!(merged, original, "fragments must union to the input");
        }
    }

    #[test]
    fn assignment_is_deterministic_and_value_based() {
        let r = sample(100);
        let a = partition_relation(&r, 4);
        let b = partition_relation(&r, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(rows_of(x), rows_of(y));
        }
        // Row order in the source must not matter for assignment.
        let mut shuffled = r.clone();
        shuffled.sort_by_positions(&[1, 0]);
        let c = partition_relation(&shuffled, 4);
        for (x, y) in a.iter().zip(&c) {
            let mut xs = rows_of(x);
            let mut ys = rows_of(y);
            xs.sort();
            ys.sort();
            assert_eq!(xs, ys, "assignment depends only on values");
        }
    }

    #[test]
    fn duplicate_rows_colocate() {
        let mut b = RelationBuilder::new(Schema::new(["a"]));
        for _ in 0..6 {
            b.push_ints(&[42], 1.0);
        }
        for _ in 0..4 {
            b.push_ints(&[7], 2.0);
        }
        let parts = partition_relation(&b.finish(), 5);
        // All copies of a tuple land on exactly one fragment.
        for (tuple, copies) in [(Value::Int(42), 6usize), (Value::Int(7), 4)] {
            let holders: Vec<usize> = parts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.iter().any(|(_, row, _)| row == [tuple]))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(holders.len(), 1, "duplicates of {tuple:?} must co-locate");
            let holder = &parts[holders[0]];
            let count = holder.iter().filter(|(_, row, _)| *row == [tuple]).count();
            assert_eq!(count, copies);
        }
    }

    #[test]
    fn single_shard_is_the_whole_relation() {
        let r = sample(10);
        let parts = partition_relation(&r, 1);
        assert_eq!(parts.len(), 1);
        assert!(parts[0].shares_payload(&r), "one shard is a free clone");
    }

    #[test]
    fn empty_relation_partitions_to_empty_fragments() {
        let r = Relation::empty(Schema::new(["x"]));
        let parts = partition_relation(&r, 3);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(Relation::is_empty));
    }

    #[test]
    fn large_input_spreads_across_shards() {
        let r = sample(2000);
        let parts = partition_relation(&r, 8);
        for p in &parts {
            assert!(
                p.len() > 100,
                "hash should spread 2000 distinct rows roughly evenly, got {}",
                p.len()
            );
        }
    }
}
