//! Weighted in-memory relations.
//!
//! Rows are stored row-major in one flat `Vec<Value>` (arity stride) with a
//! parallel `Vec<Weight>`; this keeps a full-table scan — the access
//! pattern that dominates Yannakakis, semi-joins, and DP preprocessing —
//! a single linear sweep over two contiguous buffers.

use crate::schema::Schema;
use crate::value::{Value, Weight};

/// Index of a row within a [`Relation`]. `u32` keeps per-row bookkeeping
/// structures (groups, pointers) compact; 4 billion rows per relation is
/// far beyond in-memory scale.
pub type RowId = u32;

/// An immutable weighted relation (bag semantics; call
/// [`Relation::dedup`] for set semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    /// Row-major values, `len = rows * arity`.
    data: Vec<Value>,
    weights: Vec<Weight>,
}

impl Relation {
    /// An empty relation over `schema`.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            data: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Build from parallel row/weight vectors (test & generator helper).
    pub fn from_rows<R: AsRef<[Value]>>(schema: Schema, rows: &[R], weights: &[Weight]) -> Self {
        assert_eq!(rows.len(), weights.len(), "rows/weights length mismatch");
        let mut b = RelationBuilder::new(schema);
        for (r, &w) in rows.iter().zip(weights) {
            b.push(r.as_ref(), w);
        }
        b.finish()
    }

    /// Build an unweighted relation (all weights zero).
    pub fn from_unweighted_rows<R: AsRef<[Value]>>(schema: Schema, rows: &[R]) -> Self {
        let weights = vec![Weight::ZERO; rows.len()];
        Relation::from_rows(schema, rows, &weights)
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Arity (number of attributes).
    #[inline]
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True iff the relation has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The values of row `id`.
    #[inline]
    pub fn row(&self, id: RowId) -> &[Value] {
        let a = self.arity();
        let start = id as usize * a;
        &self.data[start..start + a]
    }

    /// The weight of row `id`.
    #[inline]
    pub fn weight(&self, id: RowId) -> Weight {
        self.weights[id as usize]
    }

    /// All weights (parallel to row ids).
    #[inline]
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// Iterate `(RowId, &[Value], Weight)`.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[Value], Weight)> + '_ {
        let a = self.arity();
        self.weights
            .iter()
            .enumerate()
            .map(move |(i, &w)| (i as RowId, &self.data[i * a..(i + 1) * a], w))
    }

    /// Extract the sub-tuple of row `id` at `positions` into `out`.
    #[inline]
    pub fn key_into(&self, id: RowId, positions: &[usize], out: &mut Vec<Value>) {
        out.clear();
        let row = self.row(id);
        out.extend(positions.iter().map(|&p| row[p]));
    }

    /// Extract the sub-tuple of row `id` at `positions` as a fresh vec.
    #[inline]
    pub fn key(&self, id: RowId, positions: &[usize]) -> Vec<Value> {
        let row = self.row(id);
        positions.iter().map(|&p| row[p]).collect()
    }

    /// Keep only rows whose id passes `pred` (used by semi-join reducers).
    /// Preserves row order; returns the number of retained rows.
    pub fn retain<F: FnMut(RowId) -> bool>(&mut self, mut pred: F) -> usize {
        let a = self.arity();
        let mut out = 0usize;
        for i in 0..self.len() {
            if pred(i as RowId) {
                if out != i {
                    let (src, dst) = (i * a, out * a);
                    for j in 0..a {
                        self.data[dst + j] = self.data[src + j];
                    }
                    self.weights[out] = self.weights[i];
                }
                out += 1;
            }
        }
        self.data.truncate(out * a);
        self.weights.truncate(out);
        out
    }

    /// Sort rows lexicographically by the attributes at `positions`
    /// (stable within equal keys by original order).
    pub fn sort_by_positions(&mut self, positions: &[usize]) {
        let n = self.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&x, &y| {
            let rx = self.row(x);
            let ry = self.row(y);
            for &p in positions {
                match rx[p].cmp(&ry[p]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            x.cmp(&y)
        });
        self.permute(&order);
    }

    /// Sort rows by weight ascending.
    pub fn sort_by_weight(&mut self) {
        let n = self.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&x, &y| {
            self.weights[x as usize]
                .cmp(&self.weights[y as usize])
                .then(x.cmp(&y))
        });
        self.permute(&order);
    }

    /// Reorder rows so new row i = old row order[i].
    fn permute(&mut self, order: &[u32]) {
        let a = self.arity();
        let mut data = Vec::with_capacity(self.data.len());
        let mut weights = Vec::with_capacity(self.weights.len());
        for &o in order {
            let s = o as usize * a;
            data.extend_from_slice(&self.data[s..s + a]);
            weights.push(self.weights[o as usize]);
        }
        self.data = data;
        self.weights = weights;
    }

    /// Remove duplicate rows (same values), keeping the *lightest* weight
    /// for each distinct tuple. Sorts the relation by all attributes.
    pub fn dedup(&mut self) {
        let positions: Vec<usize> = (0..self.arity()).collect();
        // Sort by values then weight so the lightest duplicate comes first.
        let n = self.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&x, &y| {
            let rx = self.row(x);
            let ry = self.row(y);
            for &p in &positions {
                match rx[p].cmp(&ry[p]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            self.weights[x as usize].cmp(&self.weights[y as usize])
        });
        self.permute(&order);
        let a = self.arity();
        let mut out = 0usize;
        for i in 0..n {
            let dup = out > 0 && {
                let prev = &self.data[(out - 1) * a..out * a];
                let cur = &self.data[i * a..(i + 1) * a];
                prev == cur
            };
            if !dup {
                if out != i {
                    let (src, dst) = (i * a, out * a);
                    for j in 0..a {
                        self.data[dst + j] = self.data[src + j];
                    }
                    self.weights[out] = self.weights[i];
                }
                out += 1;
            }
        }
        self.data.truncate(out * a);
        self.weights.truncate(out);
    }

    /// Project onto the attributes at `positions` (weights carried over;
    /// duplicates kept — follow with [`Relation::dedup`] for set
    /// semantics).
    pub fn project(&self, positions: &[usize]) -> Relation {
        let schema = Schema::new(positions.iter().map(|&p| self.schema.attr(p).to_string()));
        let mut b = RelationBuilder::new(schema);
        let mut key = Vec::with_capacity(positions.len());
        for i in 0..self.len() as RowId {
            self.key_into(i, positions, &mut key);
            b.push(&key, self.weight(i));
        }
        b.finish()
    }

    /// Rename attributes (same order, new names).
    pub fn with_schema(mut self, schema: Schema) -> Relation {
        assert_eq!(schema.arity(), self.schema.arity());
        self.schema = schema;
        self
    }

    /// Total bytes of payload (diagnostics).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Value>()
            + self.weights.len() * std::mem::size_of::<Weight>()
    }
}

/// Incremental construction of a [`Relation`].
#[derive(Debug)]
pub struct RelationBuilder {
    schema: Schema,
    data: Vec<Value>,
    weights: Vec<Weight>,
}

impl RelationBuilder {
    /// Start building a relation over `schema`.
    pub fn new(schema: Schema) -> Self {
        RelationBuilder {
            schema,
            data: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Start building with row-capacity preallocated.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let arity = schema.arity();
        RelationBuilder {
            schema,
            data: Vec::with_capacity(rows * arity),
            weights: Vec::with_capacity(rows),
        }
    }

    /// Append a row. Panics if the arity mismatches.
    #[inline]
    pub fn push(&mut self, row: &[Value], weight: Weight) {
        debug_assert_eq!(row.len(), self.schema.arity(), "row arity mismatch");
        self.data.extend_from_slice(row);
        self.weights.push(weight);
    }

    /// Append an integer row (graph workload convenience).
    #[inline]
    pub fn push_ints(&mut self, row: &[i64], weight: f64) {
        debug_assert_eq!(row.len(), self.schema.arity(), "row arity mismatch");
        self.data.extend(row.iter().map(|&v| Value::Int(v)));
        self.weights.push(Weight::new(weight));
    }

    /// Rows so far.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True iff no rows yet.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Finish and return the relation.
    pub fn finish(self) -> Relation {
        Relation {
            schema: self.schema,
            data: self.data,
            weights: self.weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["a", "b"]));
        b.push_ints(&[1, 10], 0.5);
        b.push_ints(&[2, 20], 0.25);
        b.push_ints(&[1, 30], 1.0);
        b.finish()
    }

    #[test]
    fn basic_access() {
        let r = rel();
        assert_eq!(r.len(), 3);
        assert_eq!(r.row(0), &[Value::Int(1), Value::Int(10)]);
        assert_eq!(r.weight(1), Weight::new(0.25));
    }

    #[test]
    fn key_extraction() {
        let r = rel();
        assert_eq!(r.key(2, &[1]), vec![Value::Int(30)]);
        let mut out = Vec::new();
        r.key_into(0, &[1, 0], &mut out);
        assert_eq!(out, vec![Value::Int(10), Value::Int(1)]);
    }

    #[test]
    fn retain_filters_in_place() {
        let mut r = rel();
        let kept = r.retain(|id| id != 1);
        assert_eq!(kept, 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(1), &[Value::Int(1), Value::Int(30)]);
    }

    #[test]
    fn sort_by_positions_orders_rows() {
        let mut r = rel();
        r.sort_by_positions(&[0, 1]);
        assert_eq!(r.row(0), &[Value::Int(1), Value::Int(10)]);
        assert_eq!(r.row(1), &[Value::Int(1), Value::Int(30)]);
        assert_eq!(r.row(2), &[Value::Int(2), Value::Int(20)]);
    }

    #[test]
    fn sort_by_weight_orders_rows() {
        let mut r = rel();
        r.sort_by_weight();
        assert_eq!(r.weight(0), Weight::new(0.25));
        assert_eq!(r.weight(2), Weight::new(1.0));
    }

    #[test]
    fn dedup_keeps_lightest() {
        let mut b = RelationBuilder::new(Schema::new(["a"]));
        b.push_ints(&[5], 2.0);
        b.push_ints(&[5], 1.0);
        b.push_ints(&[6], 3.0);
        let mut r = b.finish();
        r.dedup();
        assert_eq!(r.len(), 2);
        assert_eq!(r.weight(0), Weight::new(1.0));
    }

    #[test]
    fn project_carries_weights() {
        let r = rel();
        let p = r.project(&[1]);
        assert_eq!(p.schema().attrs(), &["b".to_string()]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.weight(2), Weight::new(1.0));
    }

    #[test]
    fn iter_matches_access() {
        let r = rel();
        let collected: Vec<_> = r.iter().map(|(id, row, w)| (id, row.to_vec(), w)).collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[1].1, vec![Value::Int(2), Value::Int(20)]);
        assert_eq!(collected[1].2, Weight::new(0.25));
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(Schema::new(["x"]));
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
    }
}
