//! Weighted in-memory relations.
//!
//! Rows are stored row-major in one flat `Vec<Value>` (arity stride) with a
//! parallel `Vec<Weight>`; this keeps a full-table scan — the access
//! pattern that dominates Yannakakis, semi-joins, and DP preprocessing —
//! a single linear sweep over two contiguous buffers.
//!
//! A [`Relation`] is a cheap **handle** over an `Arc`-shared immutable
//! payload: `clone()` is a refcount bump, so catalogs, engines, and
//! prepared queries can all hold "the same" relation without copying
//! `O(n)` tuple data. The in-place editing API (`retain`, sorts,
//! `dedup`) is copy-on-write: the first mutation of a *shared* handle
//! clones the payload once ([`Arc::make_mut`]); an unshared handle
//! mutates directly, exactly as the pre-`Arc` representation did.

use crate::schema::Schema;
use crate::value::{Value, Weight};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide source of payload identities. Every distinct payload
/// allocation (builder `finish`, copy-on-write clone, permutation)
/// gets a fresh id, so an id uniquely names immutable tuple data for
/// the lifetime of the process — the index-catalog key that can never
/// alias across catalog snapshots (unlike `Arc` pointer identity,
/// which an allocator may reuse).
static NEXT_PAYLOAD_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_payload_id() -> u64 {
    NEXT_PAYLOAD_ID.fetch_add(1, Ordering::Relaxed)
}

/// Index of a row within a [`Relation`]. `u32` keeps per-row bookkeeping
/// structures (groups, pointers) compact; 4 billion rows per relation is
/// far beyond in-memory scale.
pub type RowId = u32;

/// The owned tuple data behind a [`Relation`] handle.
#[derive(Debug)]
struct Payload {
    /// Unique identity of this allocation (see [`fresh_payload_id`]).
    /// Not part of equality: two payloads with equal tuples but
    /// different ids still compare equal.
    id: u64,
    schema: Schema,
    /// Row-major values, `len = rows * arity`.
    data: Vec<Value>,
    weights: Vec<Weight>,
}

impl Payload {
    fn new(schema: Schema, data: Vec<Value>, weights: Vec<Weight>) -> Self {
        Payload {
            id: fresh_payload_id(),
            schema,
            data,
            weights,
        }
    }
}

impl Clone for Payload {
    /// Copy-on-write divergence point: the clone holds different (soon
    /// to be mutated) data, so it gets a fresh identity.
    fn clone(&self) -> Self {
        Payload {
            id: fresh_payload_id(),
            schema: self.schema.clone(),
            data: self.data.clone(),
            weights: self.weights.clone(),
        }
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.data == other.data && self.weights == other.weights
    }
}
impl Eq for Payload {}

/// An immutable weighted relation (bag semantics; call
/// [`Relation::dedup`] for set semantics).
///
/// Cloning is `O(1)` (shared `Arc` payload); mutating methods are
/// copy-on-write. Two handles produced by `clone()` satisfy
/// [`Relation::shares_payload`] until one of them is mutated.
#[derive(Debug, Clone, Eq)]
pub struct Relation {
    payload: Arc<Payload>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        // Handles over the same payload are equal without scanning.
        Arc::ptr_eq(&self.payload, &other.payload) || *self.payload == *other.payload
    }
}

impl Relation {
    /// An empty relation over `schema`.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            payload: Arc::new(Payload::new(schema, Vec::new(), Vec::new())),
        }
    }

    /// The unique identity of this relation's immutable payload. Two
    /// handles share an id iff they share tuple storage
    /// ([`Relation::shares_payload`]); any mutation that diverges the
    /// payload (copy-on-write, permutation) produces a fresh id. Ids
    /// are never reused within a process — the aliasing-safe key the
    /// index catalog caches tries under.
    #[inline]
    pub fn payload_id(&self) -> u64 {
        self.payload.id
    }

    /// True iff `self` and `other` are handles over the *same* shared
    /// payload (refcount siblings) — the zero-copy sharing check used
    /// by tests and diagnostics.
    #[inline]
    pub fn shares_payload(&self, other: &Relation) -> bool {
        Arc::ptr_eq(&self.payload, &other.payload)
    }

    /// Number of handles (strong references) currently sharing this
    /// relation's payload — diagnostics for the serving layer.
    #[inline]
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.payload)
    }

    /// Mutable access to the payload, cloning it first iff shared
    /// (copy-on-write seam of every in-place editing method).
    #[inline]
    fn make_mut(&mut self) -> &mut Payload {
        Arc::make_mut(&mut self.payload)
    }

    /// Build from parallel row/weight vectors (test & generator helper).
    pub fn from_rows<R: AsRef<[Value]>>(schema: Schema, rows: &[R], weights: &[Weight]) -> Self {
        assert_eq!(rows.len(), weights.len(), "rows/weights length mismatch");
        let mut b = RelationBuilder::new(schema);
        for (r, &w) in rows.iter().zip(weights) {
            b.push(r.as_ref(), w);
        }
        b.finish()
    }

    /// Build an unweighted relation (all weights zero).
    pub fn from_unweighted_rows<R: AsRef<[Value]>>(schema: Schema, rows: &[R]) -> Self {
        let weights = vec![Weight::ZERO; rows.len()];
        Relation::from_rows(schema, rows, &weights)
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.payload.schema
    }

    /// Arity (number of attributes).
    #[inline]
    pub fn arity(&self) -> usize {
        self.payload.schema.arity()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.payload.weights.len()
    }

    /// True iff the relation has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.payload.weights.is_empty()
    }

    /// The values of row `id`.
    #[inline]
    pub fn row(&self, id: RowId) -> &[Value] {
        let a = self.arity();
        let start = id as usize * a;
        &self.payload.data[start..start + a]
    }

    /// The weight of row `id`.
    #[inline]
    pub fn weight(&self, id: RowId) -> Weight {
        self.payload.weights[id as usize]
    }

    /// All weights (parallel to row ids).
    #[inline]
    pub fn weights(&self) -> &[Weight] {
        &self.payload.weights
    }

    /// Iterate `(RowId, &[Value], Weight)`.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[Value], Weight)> + '_ {
        let a = self.arity();
        self.payload
            .weights
            .iter()
            .enumerate()
            .map(move |(i, &w)| (i as RowId, &self.payload.data[i * a..(i + 1) * a], w))
    }

    /// Extract the sub-tuple of row `id` at `positions` into `out`.
    #[inline]
    pub fn key_into(&self, id: RowId, positions: &[usize], out: &mut Vec<Value>) {
        out.clear();
        let row = self.row(id);
        out.extend(positions.iter().map(|&p| row[p]));
    }

    /// Extract the sub-tuple of row `id` at `positions` as a fresh vec.
    #[inline]
    pub fn key(&self, id: RowId, positions: &[usize]) -> Vec<Value> {
        let row = self.row(id);
        positions.iter().map(|&p| row[p]).collect()
    }

    /// Keep only rows whose id passes `pred` (used by semi-join reducers).
    /// Preserves row order; returns the number of retained rows.
    ///
    /// Copy-on-write: the payload is cloned only when at least one row
    /// is actually dropped, so an all-pass reduction of a shared handle
    /// (the common case on globally consistent inputs) copies nothing.
    pub fn retain<F: FnMut(RowId) -> bool>(&mut self, mut pred: F) -> usize {
        let n = self.len();
        // First pass: find the first dropped row without touching data.
        let mut first_drop = n;
        for i in 0..n {
            if !pred(i as RowId) {
                first_drop = i;
                break;
            }
        }
        if first_drop == n {
            return n;
        }
        let a = self.arity();
        let p = self.make_mut();
        let mut out = first_drop;
        for i in (first_drop + 1)..n {
            if pred(i as RowId) {
                let (src, dst) = (i * a, out * a);
                for j in 0..a {
                    p.data[dst + j] = p.data[src + j];
                }
                p.weights[out] = p.weights[i];
                out += 1;
            }
        }
        p.data.truncate(out * a);
        p.weights.truncate(out);
        out
    }

    /// Sort rows lexicographically by the attributes at `positions`
    /// (stable within equal keys by original order).
    pub fn sort_by_positions(&mut self, positions: &[usize]) {
        let n = self.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&x, &y| {
            let rx = self.row(x);
            let ry = self.row(y);
            for &p in positions {
                match rx[p].cmp(&ry[p]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            x.cmp(&y)
        });
        self.permute(&order);
    }

    /// Sort rows by weight ascending.
    pub fn sort_by_weight(&mut self) {
        let n = self.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&x, &y| self.weight(x).cmp(&self.weight(y)).then(x.cmp(&y)));
        self.permute(&order);
    }

    /// Reorder rows so new row i = old row order[i].
    fn permute(&mut self, order: &[u32]) {
        let a = self.arity();
        let mut data = Vec::with_capacity(self.payload.data.len());
        let mut weights = Vec::with_capacity(self.payload.weights.len());
        for &o in order {
            let s = o as usize * a;
            data.extend_from_slice(&self.payload.data[s..s + a]);
            weights.push(self.payload.weights[o as usize]);
        }
        // Fresh buffers replace the payload wholesale: no point in a
        // copy-on-write clone that would be overwritten immediately.
        self.payload = Arc::new(Payload::new(self.payload.schema.clone(), data, weights));
    }

    /// Remove duplicate rows (same values), keeping the *lightest* weight
    /// for each distinct tuple. Sorts the relation by all attributes.
    pub fn dedup(&mut self) {
        let positions: Vec<usize> = (0..self.arity()).collect();
        // Sort by values then weight so the lightest duplicate comes first.
        let n = self.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&x, &y| {
            let rx = self.row(x);
            let ry = self.row(y);
            for &p in &positions {
                match rx[p].cmp(&ry[p]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            self.weight(x).cmp(&self.weight(y))
        });
        self.permute(&order);
        let a = self.arity();
        // permute() just installed a fresh unshared payload, so this
        // make_mut never clones.
        let p = self.make_mut();
        let mut out = 0usize;
        for i in 0..n {
            let dup = out > 0 && {
                let prev = &p.data[(out - 1) * a..out * a];
                let cur = &p.data[i * a..(i + 1) * a];
                prev == cur
            };
            if !dup {
                if out != i {
                    let (src, dst) = (i * a, out * a);
                    for j in 0..a {
                        p.data[dst + j] = p.data[src + j];
                    }
                    p.weights[out] = p.weights[i];
                }
                out += 1;
            }
        }
        p.data.truncate(out * a);
        p.weights.truncate(out);
    }

    /// Project onto the attributes at `positions` (weights carried over;
    /// duplicates kept — follow with [`Relation::dedup`] for set
    /// semantics).
    pub fn project(&self, positions: &[usize]) -> Relation {
        let schema = Schema::new(positions.iter().map(|&p| self.schema().attr(p).to_string()));
        let mut b = RelationBuilder::new(schema);
        let mut key = Vec::with_capacity(positions.len());
        for i in 0..self.len() as RowId {
            self.key_into(i, positions, &mut key);
            b.push(&key, self.weight(i));
        }
        b.finish()
    }

    /// Rename attributes (same order, new names).
    pub fn with_schema(mut self, schema: Schema) -> Relation {
        assert_eq!(schema.arity(), self.payload.schema.arity());
        self.make_mut().schema = schema;
        self
    }

    /// Concatenate `parts` into one fresh relation: all rows of
    /// `parts[0]`, then all rows of `parts[1]`, … — the row-order
    /// contract delta compaction relies on. Takes the first part's
    /// schema; every part must have the same arity.
    ///
    /// A single part is returned as a shared handle (refcount bump,
    /// no copy).
    ///
    /// # Panics
    ///
    /// If `parts` is empty or arities differ (callers — the delta
    /// layer — have already schema-checked appends).
    pub fn concat(parts: &[Relation]) -> Relation {
        assert!(!parts.is_empty(), "concat of zero relations");
        if parts.len() == 1 {
            return parts[0].clone();
        }
        let schema = parts[0].schema().clone();
        let arity = schema.arity();
        let rows: usize = parts.iter().map(Relation::len).sum();
        let mut data = Vec::with_capacity(rows * arity);
        let mut weights = Vec::with_capacity(rows);
        for p in parts {
            assert_eq!(p.arity(), arity, "concat arity mismatch");
            data.extend_from_slice(&p.payload.data);
            weights.extend_from_slice(&p.payload.weights);
        }
        Relation {
            payload: Arc::new(Payload::new(schema, data, weights)),
        }
    }

    /// Total bytes of payload (diagnostics).
    pub fn payload_bytes(&self) -> usize {
        self.payload.data.len() * std::mem::size_of::<Value>()
            + self.payload.weights.len() * std::mem::size_of::<Weight>()
    }
}

/// Incremental construction of a [`Relation`].
#[derive(Debug)]
pub struct RelationBuilder {
    schema: Schema,
    data: Vec<Value>,
    weights: Vec<Weight>,
}

impl RelationBuilder {
    /// Start building a relation over `schema`.
    pub fn new(schema: Schema) -> Self {
        RelationBuilder {
            schema,
            data: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Start building with row-capacity preallocated.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let arity = schema.arity();
        RelationBuilder {
            schema,
            data: Vec::with_capacity(rows * arity),
            weights: Vec::with_capacity(rows),
        }
    }

    /// Append a row. Panics if the arity mismatches.
    #[inline]
    pub fn push(&mut self, row: &[Value], weight: Weight) {
        debug_assert_eq!(row.len(), self.schema.arity(), "row arity mismatch");
        self.data.extend_from_slice(row);
        self.weights.push(weight);
    }

    /// Append an integer row (graph workload convenience).
    #[inline]
    pub fn push_ints(&mut self, row: &[i64], weight: f64) {
        debug_assert_eq!(row.len(), self.schema.arity(), "row arity mismatch");
        self.data.extend(row.iter().map(|&v| Value::Int(v)));
        self.weights.push(Weight::new(weight));
    }

    /// Rows so far.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True iff no rows yet.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Finish and return the relation (payload moves behind its `Arc`;
    /// no copy).
    pub fn finish(self) -> Relation {
        Relation {
            payload: Arc::new(Payload::new(self.schema, self.data, self.weights)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["a", "b"]));
        b.push_ints(&[1, 10], 0.5);
        b.push_ints(&[2, 20], 0.25);
        b.push_ints(&[1, 30], 1.0);
        b.finish()
    }

    #[test]
    fn basic_access() {
        let r = rel();
        assert_eq!(r.len(), 3);
        assert_eq!(r.row(0), &[Value::Int(1), Value::Int(10)]);
        assert_eq!(r.weight(1), Weight::new(0.25));
    }

    #[test]
    fn key_extraction() {
        let r = rel();
        assert_eq!(r.key(2, &[1]), vec![Value::Int(30)]);
        let mut out = Vec::new();
        r.key_into(0, &[1, 0], &mut out);
        assert_eq!(out, vec![Value::Int(10), Value::Int(1)]);
    }

    #[test]
    fn retain_filters_in_place() {
        let mut r = rel();
        let kept = r.retain(|id| id != 1);
        assert_eq!(kept, 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(1), &[Value::Int(1), Value::Int(30)]);
    }

    #[test]
    fn sort_by_positions_orders_rows() {
        let mut r = rel();
        r.sort_by_positions(&[0, 1]);
        assert_eq!(r.row(0), &[Value::Int(1), Value::Int(10)]);
        assert_eq!(r.row(1), &[Value::Int(1), Value::Int(30)]);
        assert_eq!(r.row(2), &[Value::Int(2), Value::Int(20)]);
    }

    #[test]
    fn sort_by_weight_orders_rows() {
        let mut r = rel();
        r.sort_by_weight();
        assert_eq!(r.weight(0), Weight::new(0.25));
        assert_eq!(r.weight(2), Weight::new(1.0));
    }

    #[test]
    fn dedup_keeps_lightest() {
        let mut b = RelationBuilder::new(Schema::new(["a"]));
        b.push_ints(&[5], 2.0);
        b.push_ints(&[5], 1.0);
        b.push_ints(&[6], 3.0);
        let mut r = b.finish();
        r.dedup();
        assert_eq!(r.len(), 2);
        assert_eq!(r.weight(0), Weight::new(1.0));
    }

    #[test]
    fn project_carries_weights() {
        let r = rel();
        let p = r.project(&[1]);
        assert_eq!(p.schema().attrs(), &["b".to_string()]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.weight(2), Weight::new(1.0));
    }

    #[test]
    fn iter_matches_access() {
        let r = rel();
        let collected: Vec<_> = r.iter().map(|(id, row, w)| (id, row.to_vec(), w)).collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[1].1, vec![Value::Int(2), Value::Int(20)]);
        assert_eq!(collected[1].2, Weight::new(0.25));
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(Schema::new(["x"]));
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn clone_is_a_shared_handle_until_mutation() {
        let r = rel();
        let mut c = r.clone();
        assert!(r.shares_payload(&c));
        assert_eq!(r.handle_count(), 2);
        assert_eq!(r, c);
        // A dropping retain triggers copy-on-write: the original handle
        // is untouched.
        c.retain(|id| id != 0);
        assert!(!r.shares_payload(&c));
        assert_eq!(r.len(), 3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn all_pass_retain_preserves_sharing() {
        let r = rel();
        let mut c = r.clone();
        assert_eq!(c.retain(|_| true), 3);
        assert!(
            r.shares_payload(&c),
            "no row dropped -> no copy-on-write clone"
        );
    }

    #[test]
    fn payload_id_tracks_sharing_and_divergence() {
        let r = rel();
        let mut c = r.clone();
        assert_eq!(r.payload_id(), c.payload_id(), "clone shares identity");
        // All-pass retain keeps the shared payload (and its id).
        c.retain(|_| true);
        assert_eq!(r.payload_id(), c.payload_id());
        // A dropping retain diverges: fresh payload, fresh id.
        c.retain(|id| id != 0);
        assert_ne!(r.payload_id(), c.payload_id());
        // Equality ignores identity.
        let twin = rel();
        assert_ne!(r.payload_id(), twin.payload_id());
        assert_eq!(r, twin);
    }

    #[test]
    fn concat_preserves_part_order() {
        let r = rel();
        let single = Relation::concat(std::slice::from_ref(&r));
        assert!(single.shares_payload(&r), "single-part concat is a handle");

        let mut b = RelationBuilder::new(Schema::new(["a", "b"]));
        b.push_ints(&[9, 90], 0.125);
        let tail = b.finish();
        let cat = Relation::concat(&[r.clone(), tail]);
        assert_eq!(cat.len(), 4);
        assert_eq!(cat.row(0), r.row(0));
        assert_eq!(cat.row(3), &[Value::Int(9), Value::Int(90)]);
        assert_eq!(cat.weight(3), Weight::new(0.125));
        assert_ne!(cat.payload_id(), r.payload_id());
    }

    #[test]
    fn sort_on_shared_handle_leaves_sibling_intact() {
        let r = rel();
        let mut c = r.clone();
        c.sort_by_weight();
        assert_eq!(r.weight(0), Weight::new(0.5), "original order preserved");
        assert_eq!(c.weight(0), Weight::new(0.25));
        assert!(!r.shares_payload(&c));
    }
}
