//! Relation schemas: ordered attribute names with positional lookup.

use crate::error::StorageError;
use std::fmt;

/// An ordered list of attribute names.
///
/// Schemas are tiny (data complexity treats query size as constant), so a
/// linear scan for name lookup is deliberate — it beats a hash map for the
/// 2–6 attribute schemas that dominate join queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<String>,
}

impl Schema {
    /// Build a schema from attribute names. Panics on duplicates.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(attrs: I) -> Self {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        for (i, a) in attrs.iter().enumerate() {
            assert!(
                !attrs[..i].contains(a),
                "duplicate attribute `{a}` in schema"
            );
        }
        Schema { attrs }
    }

    /// Number of attributes (arity).
    #[inline]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of `name`, if present.
    #[inline]
    pub fn position(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == name)
    }

    /// Position of `name`, with a typed error for absence — the
    /// non-panicking seam the engine layer routes through.
    #[inline]
    pub fn position_of(&self, name: &str) -> Result<usize, StorageError> {
        self.position(name)
            .ok_or_else(|| StorageError::AttributeNotFound {
                attr: name.to_string(),
                schema: self.to_string(),
            })
    }

    /// Attribute name at `pos`.
    #[inline]
    pub fn attr(&self, pos: usize) -> &str {
        &self.attrs[pos]
    }

    /// All attribute names in order.
    #[inline]
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Does the schema contain `name`?
    #[inline]
    pub fn contains(&self, name: &str) -> bool {
        self.position(name).is_some()
    }

    /// Positions of each of `names` in this schema; fails on the first
    /// missing attribute.
    pub fn positions_of(&self, names: &[&str]) -> Result<Vec<usize>, StorageError> {
        names.iter().map(|n| self.position_of(n)).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.attrs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup() {
        let s = Schema::new(["a", "b", "c"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position("b"), Some(1));
        assert_eq!(s.position("z"), None);
        assert!(s.contains("c"));
        assert_eq!(s.attr(0), "a");
    }

    #[test]
    #[should_panic]
    fn duplicate_attr_rejected() {
        let _ = Schema::new(["a", "a"]);
    }

    #[test]
    fn positions_of_many() {
        let s = Schema::new(["x", "y", "z"]);
        assert_eq!(s.positions_of(&["z", "x"]), Ok(vec![2, 0]));
        assert_eq!(
            s.positions_of(&["z", "w"]).err(),
            Some(StorageError::AttributeNotFound {
                attr: "w".into(),
                schema: "(x, y, z)".into(),
            })
        );
        assert_eq!(s.position_of("y"), Ok(1));
        assert!(s.position_of("q").is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Schema::new(["a", "b"]).to_string(), "(a, b)");
    }
}
