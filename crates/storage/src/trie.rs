//! Sorted tries over relations, the backbone of worst-case-optimal joins.
//!
//! A [`Trie`] materializes a relation as nested sorted levels following a
//! chosen attribute order. Generic-Join binds one query variable at a
//! time by *intersecting* the child value lists of the participating
//! relations' trie nodes; [`Trie::seek`] provides the galloping search
//! that makes each intersection step logarithmic (Leapfrog-Triejoin
//! style).
//!
//! Layout: level `l` stores the concatenated, per-parent-sorted distinct
//! values of attribute `l` (`values[l]`) plus, for each value, the start
//! of its child span in the next level (`starts[l]`). The final level's
//! spans index into `rows`, the row ids sorted by the attribute order —
//! so every trie leaf can recover the original tuples (and weights).

use crate::relation::{Relation, RowId};
use crate::value::Value;

/// A handle to one trie node's *children*: the span
/// `values[level][start..end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeHandle {
    /// Level of the child values this handle spans.
    pub level: u32,
    /// Start index within `values[level]`.
    pub start: u32,
    /// End index within `values[level]` (exclusive).
    pub end: u32,
}

impl NodeHandle {
    /// Number of child values.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True iff the node has no children (cannot happen for handles
    /// produced by descending into an existing value).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A materialized sorted trie over a relation (see module docs).
#[derive(Debug)]
pub struct Trie {
    /// Attribute positions (into the base relation) per level.
    positions: Vec<usize>,
    /// Distinct values per level, concatenated across parents.
    values: Vec<Vec<Value>>,
    /// `starts[l][i]` = start of the child span of `values[l][i]` in
    /// level `l+1` (or in `rows` for the last level);
    /// `starts[l][i+1]` is the end. Length is `values[l].len() + 1`.
    starts: Vec<Vec<u32>>,
    /// Row ids sorted by the attribute order.
    rows: Vec<RowId>,
}

impl Trie {
    /// Build a trie over `rel` with one level per position in
    /// `positions` (a permutation or subset of the relation's columns).
    pub fn build(rel: &Relation, positions: &[usize]) -> Self {
        assert!(!positions.is_empty(), "trie needs at least one level");
        let mut rows: Vec<RowId> = (0..rel.len() as RowId).collect();
        rows.sort_by(|&x, &y| {
            let rx = rel.row(x);
            let ry = rel.row(y);
            for &p in positions {
                match rx[p].cmp(&ry[p]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            x.cmp(&y)
        });

        let depth = positions.len();
        let mut values: Vec<Vec<Value>> = vec![Vec::new(); depth];
        let mut starts: Vec<Vec<u32>> = vec![Vec::new(); depth];

        // Build level by level. `segments` holds one row range per node
        // at the *previous* level (one synthetic root segment for level
        // 0). While emitting level-l values we simultaneously learn the
        // child spans of the level-(l-1) nodes, because each parent's
        // children are emitted contiguously.
        let mut segments: Vec<(u32, u32)> = vec![(0, rows.len() as u32)];
        for (l, &p) in positions.iter().enumerate() {
            let mut next_segments: Vec<(u32, u32)> = Vec::with_capacity(segments.len());
            let mut parent_starts: Vec<u32> = Vec::with_capacity(segments.len() + 1);
            for &(seg_start, seg_end) in &segments {
                parent_starts.push(values[l].len() as u32);
                let mut i = seg_start;
                while i < seg_end {
                    let v = rel.row(rows[i as usize])[p];
                    let mut j = i + 1;
                    while j < seg_end && rel.row(rows[j as usize])[p] == v {
                        j += 1;
                    }
                    values[l].push(v);
                    next_segments.push((i, j));
                    i = j;
                }
            }
            parent_starts.push(values[l].len() as u32);
            if l > 0 {
                starts[l - 1] = parent_starts;
            }
            segments = next_segments;
        }
        // Last level's spans point into `rows` directly.
        let mut leaf_starts: Vec<u32> = Vec::with_capacity(segments.len() + 1);
        leaf_starts.extend(segments.iter().map(|&(s, _)| s));
        leaf_starts.push(rows.len() as u32);
        starts[depth - 1] = leaf_starts;

        Trie {
            positions: positions.to_vec(),
            values,
            starts,
            rows,
        }
    }

    /// Number of levels.
    #[inline]
    pub fn depth(&self) -> usize {
        self.positions.len()
    }

    /// The attribute positions per level.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Handle spanning the root's children (the distinct values of the
    /// first attribute).
    #[inline]
    pub fn root(&self) -> NodeHandle {
        NodeHandle {
            level: 0,
            start: 0,
            end: self.values[0].len() as u32,
        }
    }

    /// The `i`-th child value within `h` (absolute index: `h.start <= i <
    /// h.end`).
    #[inline]
    pub fn value_at(&self, h: NodeHandle, i: u32) -> Value {
        debug_assert!(i >= h.start && i < h.end);
        self.values[h.level as usize][i as usize]
    }

    /// All child values within `h`, sorted ascending.
    #[inline]
    pub fn child_values(&self, h: NodeHandle) -> &[Value] {
        &self.values[h.level as usize][h.start as usize..h.end as usize]
    }

    /// Descend into the `i`-th child of `h`, yielding the handle over
    /// *its* children. Only valid when `h.level + 1 < depth`.
    #[inline]
    pub fn descend(&self, h: NodeHandle, i: u32) -> NodeHandle {
        debug_assert!((h.level as usize) + 1 < self.depth());
        let s = &self.starts[h.level as usize];
        NodeHandle {
            level: h.level + 1,
            start: s[i as usize],
            end: s[i as usize + 1],
        }
    }

    /// The rows below the `i`-th child of `h`, valid only at the last
    /// level (`h.level + 1 == depth`).
    #[inline]
    pub fn leaf_rows(&self, h: NodeHandle, i: u32) -> &[RowId] {
        debug_assert_eq!((h.level as usize) + 1, self.depth());
        let s = &self.starts[h.level as usize];
        &self.rows[s[i as usize] as usize..s[i as usize + 1] as usize]
    }

    /// All rows below the node whose children `h` spans (any level): the
    /// contiguous run of `rows` covered by `h`'s span.
    pub fn rows_under(&self, h: NodeHandle) -> &[RowId] {
        if h.is_empty() {
            return &[];
        }
        // Walk down the leftmost/rightmost paths to find row bounds.
        let (mut level, mut lo, mut hi) = (h.level as usize, h.start, h.end);
        while level + 1 < self.depth() {
            let s = &self.starts[level];
            lo = s[lo as usize];
            hi = s[hi as usize]; // end-exclusive: start of the node after
            level += 1;
        }
        let s = &self.starts[level];
        &self.rows[s[lo as usize] as usize..s[hi as usize] as usize]
    }

    /// The rows below the `i`-th child of `h`, at **any** level: the
    /// last level answers directly from its leaf spans; inner levels
    /// descend once and cover the contiguous row run underneath. This
    /// is the emission primitive for joins consuming a trie *deeper*
    /// than the atom's variable count (a shared full-permutation index
    /// serving a prefix request).
    #[inline]
    pub fn rows_below(&self, h: NodeHandle, i: u32) -> &[RowId] {
        if (h.level as usize) + 1 == self.depth() {
            self.leaf_rows(h, i)
        } else {
            self.rows_under(self.descend(h, i))
        }
    }

    /// Estimated resident heap bytes of this trie (values, child-span
    /// offsets, sorted row ids, and the level/position bookkeeping) —
    /// the unit the index catalog's LRU budget is accounted in.
    pub fn memory_bytes(&self) -> usize {
        let values: usize = self
            .values
            .iter()
            .map(|v| v.len() * std::mem::size_of::<Value>())
            .sum();
        let starts: usize = self
            .starts
            .iter()
            .map(|s| s.len() * std::mem::size_of::<u32>())
            .sum();
        values
            + starts
            + self.rows.len() * std::mem::size_of::<RowId>()
            + self.positions.len() * std::mem::size_of::<usize>()
    }

    /// Find the child of `h` with exactly value `v`; returns its absolute
    /// index if present.
    #[inline]
    pub fn find(&self, h: NodeHandle, v: Value) -> Option<u32> {
        let vals = self.child_values(h);
        vals.binary_search(&v).ok().map(|off| h.start + off as u32)
    }

    /// Galloping seek: the smallest absolute index `i >= from` with
    /// `value_at(h, i) >= v`, or `h.end` if none. `from` must satisfy
    /// `h.start <= from <= h.end`.
    pub fn seek(&self, h: NodeHandle, from: u32, v: Value) -> u32 {
        let vals = &self.values[h.level as usize];
        let mut lo = from as usize;
        let end = h.end as usize;
        if lo >= end || vals[lo] >= v {
            return lo as u32;
        }
        // Exponential probe then binary search within the bracket.
        let mut step = 1usize;
        let mut hi = lo + 1;
        while hi < end && vals[hi] < v {
            lo = hi;
            step <<= 1;
            hi = (lo + step).min(end);
        }
        // Invariant: vals[lo] < v, and (hi == end or vals[hi] >= v).
        let off = vals[lo + 1..hi].partition_point(|x| *x < v);
        (lo + 1 + off) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::Schema;

    fn rel() -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["a", "b"]));
        for (a, bb) in [(2, 5), (1, 4), (1, 2), (2, 5), (3, 1), (1, 9)] {
            b.push_ints(&[a, bb], 0.0);
        }
        b.finish()
    }

    #[test]
    fn root_values_sorted_distinct() {
        let r = rel();
        let t = Trie::build(&r, &[0, 1]);
        let vals: Vec<i64> = t.child_values(t.root()).iter().map(|v| v.int()).collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn descend_and_leaves() {
        let r = rel();
        let t = Trie::build(&r, &[0, 1]);
        let root = t.root();
        let i = t.find(root, Value::Int(1)).unwrap();
        let child = t.descend(root, i);
        let bs: Vec<i64> = t.child_values(child).iter().map(|v| v.int()).collect();
        assert_eq!(bs, vec![2, 4, 9]);
        let j = t.find(child, Value::Int(4)).unwrap();
        let rows = t.leaf_rows(child, j);
        assert_eq!(rows.len(), 1);
        assert_eq!(r.row(rows[0]), &[Value::Int(1), Value::Int(4)]);
    }

    #[test]
    fn duplicate_rows_share_leaf() {
        let r = rel();
        let t = Trie::build(&r, &[0, 1]);
        let root = t.root();
        let i = t.find(root, Value::Int(2)).unwrap();
        let child = t.descend(root, i);
        let j = t.find(child, Value::Int(5)).unwrap();
        assert_eq!(t.leaf_rows(child, j).len(), 2);
    }

    #[test]
    fn seek_gallops() {
        let r = rel();
        let t = Trie::build(&r, &[1, 0]); // order by b then a
        let root = t.root();
        let bs: Vec<i64> = t.child_values(root).iter().map(|v| v.int()).collect();
        assert_eq!(bs, vec![1, 2, 4, 5, 9]);
        assert_eq!(t.seek(root, 0, Value::Int(3)), 2); // first >= 3 is 4
        assert_eq!(t.seek(root, 0, Value::Int(1)), 0);
        assert_eq!(t.seek(root, 3, Value::Int(5)), 3);
        assert_eq!(t.seek(root, 0, Value::Int(10)), root.end);
    }

    #[test]
    fn rows_under_counts_all() {
        let r = rel();
        let t = Trie::build(&r, &[0, 1]);
        assert_eq!(t.rows_under(t.root()).len(), r.len());
        let root = t.root();
        let i = t.find(root, Value::Int(1)).unwrap();
        let child = t.descend(root, i);
        assert_eq!(t.rows_under(child).len(), 3);
    }

    #[test]
    fn rows_below_matches_leaf_rows_and_subtrees() {
        let r = rel();
        let t = Trie::build(&r, &[0, 1]);
        let root = t.root();
        // Inner level: rows below value 1 at the root = the 3 rows with
        // a = 1, exactly what descending + rows_under reports.
        let i = t.find(root, Value::Int(1)).unwrap();
        assert_eq!(t.rows_below(root, i).len(), 3);
        assert_eq!(t.rows_below(root, i), t.rows_under(t.descend(root, i)));
        // Last level: identical to leaf_rows.
        let child = t.descend(root, i);
        let j = t.find(child, Value::Int(4)).unwrap();
        assert_eq!(t.rows_below(child, j), t.leaf_rows(child, j));
        // Single-level trie: rows_below == leaf_rows at the root.
        let t1 = Trie::build(&r, &[0]);
        let k = t1.find(t1.root(), Value::Int(2)).unwrap();
        assert_eq!(t1.rows_below(t1.root(), k).len(), 2);
    }

    #[test]
    fn memory_bytes_matches_known_shape() {
        // rel(): 6 rows over (a, b); trie [0, 1] has level-0 values
        // [1, 2, 3] and level-1 values [2, 4, 9 | 5 | 1] (5 distinct
        // per-parent), so starts are 3+1 and 5+1 offsets.
        let r = rel();
        let t = Trie::build(&r, &[0, 1]);
        let value = std::mem::size_of::<Value>();
        let expect = (3 + 5) * value + (4 + 6) * 4 + 6 * 4 + 2 * std::mem::size_of::<usize>();
        assert_eq!(t.memory_bytes(), expect);
        // Single-level trie over column 0: values [1, 2, 3], 4 offsets.
        let t1 = Trie::build(&r, &[0]);
        let expect1 = 3 * value + 4 * 4 + 6 * 4 + std::mem::size_of::<usize>();
        assert_eq!(t1.memory_bytes(), expect1);
        // A deeper trie over the same rows can only grow the estimate.
        assert!(t.memory_bytes() > t1.memory_bytes());
    }

    #[test]
    fn single_level_trie() {
        let r = rel();
        let t = Trie::build(&r, &[0]);
        let root = t.root();
        assert_eq!(t.depth(), 1);
        let i = t.find(root, Value::Int(1)).unwrap();
        assert_eq!(t.leaf_rows(root, i).len(), 3);
    }

    #[test]
    fn reversed_attribute_order() {
        let r = rel();
        let t = Trie::build(&r, &[1, 0]);
        let root = t.root();
        let i = t.find(root, Value::Int(5)).unwrap();
        let child = t.descend(root, i);
        let as_: Vec<i64> = t.child_values(child).iter().map(|v| v.int()).collect();
        assert_eq!(as_, vec![2]);
        let j = t.find(child, Value::Int(2)).unwrap();
        assert_eq!(t.leaf_rows(child, j).len(), 2);
    }
}
