//! Scalar values and tuple weights.
//!
//! [`Value`] is a small, `Copy` scalar: joins compare and hash values
//! billions of times, so the representation must be branch-cheap and at
//! most 16 bytes. Strings are interned in the [`Catalog`](crate::Catalog)
//! and represented by a `u32` symbol.
//!
//! [`Weight`] is an `f64` with a *total* order (NaN is banned at
//! construction), so weights can live in `BinaryHeap`s and be sorted
//! without `partial_cmp` unwrapping.

use std::cmp::Ordering;
use std::fmt;

/// A scalar attribute value.
///
/// The ordering is total: integers first (by value), then floats, then
/// interned strings (by symbol id — i.e. *not* lexicographic; use the
/// catalog to resolve symbols when a human-readable order is needed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit integer (also used for node ids in graph workloads).
    Int(i64),
    /// Total-ordered float (bit pattern of a non-NaN f64).
    Float(FloatBits),
    /// Interned string symbol (see [`Catalog`](crate::Catalog)).
    Sym(u32),
}

impl Value {
    /// Build a float value. Panics on NaN.
    #[inline]
    pub fn float(f: f64) -> Self {
        Value::Float(FloatBits::new(f))
    }

    /// The integer payload, if this is an `Int`.
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The integer payload; panics otherwise. Convenient in tests and in
    /// graph workloads where all join attributes are node ids.
    #[inline]
    pub fn int(self) -> i64 {
        match self {
            Value::Int(i) => i,
            other => panic!("expected Value::Int, got {other:?}"),
        }
    }
}

impl PartialOrd for Value {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.cmp(b),
            (Sym(a), Sym(b)) => a.cmp(b),
            (Int(_), _) => Ordering::Less,
            (_, Int(_)) => Ordering::Greater,
            (Float(_), Sym(_)) => Ordering::Less,
            (Sym(_), Float(_)) => Ordering::Greater,
        }
    }
}

impl From<i64> for Value {
    #[inline]
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    #[inline]
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(b) => write!(f, "{}", b.get()),
            Value::Sym(s) => write!(f, "#{s}"),
        }
    }
}

/// A non-NaN `f64` stored by bit pattern with a total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatBits(u64);

impl FloatBits {
    /// Wrap a float; panics on NaN (NaN has no place in ranking).
    #[inline]
    pub fn new(f: f64) -> Self {
        assert!(!f.is_nan(), "NaN is not a valid Value/Weight");
        FloatBits(f.to_bits())
    }

    /// The wrapped float.
    #[inline]
    pub fn get(self) -> f64 {
        f64::from_bits(self.0)
    }
}

impl PartialOrd for FloatBits {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FloatBits {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Total order on non-NaN floats: flip sign bit trick.
        let a = key(self.0);
        let b = key(other.0);
        a.cmp(&b)
    }
}

/// Monotone map from f64 bit pattern to u64 order key (non-NaN inputs).
#[inline]
fn key(bits: u64) -> u64 {
    if bits >> 63 == 0 {
        bits | (1 << 63) // positive: set top bit
    } else {
        !bits // negative: flip everything
    }
}

/// A tuple weight: a totally ordered `f64`. Lower weight = more important
/// (the paper's "k lightest 4-cycles" convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Weight(FloatBits);

impl Weight {
    /// Identity for additive ranking (weight 0).
    pub const ZERO: Weight = Weight(FloatBits(0));

    /// Build a weight; panics on NaN.
    #[inline]
    pub fn new(w: f64) -> Self {
        Weight(FloatBits::new(w))
    }

    /// The raw float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0.get()
    }
}

impl From<f64> for Weight {
    #[inline]
    fn from(f: f64) -> Self {
        Weight::new(f)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ordering() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Int(-5) < Value::Int(0));
    }

    #[test]
    fn cross_variant_ordering_is_total() {
        let vals = [Value::Int(3), Value::float(1.5), Value::Sym(7)];
        let mut sorted = vals;
        sorted.sort();
        assert_eq!(sorted[0], Value::Int(3));
        assert_eq!(sorted[2], Value::Sym(7));
    }

    #[test]
    fn float_total_order() {
        let xs = [-1.0, -0.0, 0.0, 0.5, 1.0, f64::INFINITY, f64::NEG_INFINITY];
        let mut ws: Vec<Weight> = xs.iter().copied().map(Weight::new).collect();
        ws.sort();
        let got: Vec<f64> = ws.iter().map(|w| w.get()).collect();
        assert_eq!(got[0], f64::NEG_INFINITY);
        assert_eq!(*got.last().unwrap(), f64::INFINITY);
        // -0.0 sorts before +0.0 under the bit-flip order; both equal 0.0.
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        let _ = Weight::new(f64::NAN);
    }

    #[test]
    fn weight_zero() {
        assert_eq!(Weight::ZERO.get(), 0.0);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Weight::new(2.5).to_string(), "2.5");
    }
}
