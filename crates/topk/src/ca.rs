//! CA — the Combined Algorithm of Fagin, Lotem and Naor, completing the
//! middleware family (Part 1). TA performs `m − 1` random accesses per
//! sorted access; NRA performs none. When random accesses cost `h`
//! times more than sorted ones (disks, remote services), both can be
//! far from optimal. CA interpolates: it runs NRA-style bound
//! maintenance but performs one TA-style random-access resolution round
//! every `h` sorted rounds, and is instance-optimal for the combined
//! cost `#sorted + h · #random` (up to constants).

use crate::lists::{Aggregation, ObjectId, RankedLists};
use anyk_storage::FxHashMap;

/// Top-k via CA with cost ratio `h >= 1` (`h = 1` behaves TA-like,
/// `h = ∞` would be NRA). Returns `(object, aggregate)` in descending
/// aggregate order.
pub fn combined_topk(
    lists: &mut RankedLists,
    k: usize,
    agg: Aggregation,
    h: usize,
) -> Vec<(ObjectId, f64)> {
    let m = lists.num_lists();
    if m == 0 || k == 0 {
        return Vec::new();
    }
    let h = h.max(1);
    const FLOOR: f64 = 0.0;
    let mut seen: FxHashMap<ObjectId, Vec<Option<f64>>> = FxHashMap::default();
    let mut resolved: FxHashMap<ObjectId, f64> = FxHashMap::default();
    let mut last_scores: Vec<f64> = vec![f64::INFINITY; m];
    let mut exhausted = vec![false; m];
    let mut depth = 0usize;

    loop {
        // One round of parallel sorted accesses.
        let mut progressed = false;
        for list in 0..m {
            if exhausted[list] {
                continue;
            }
            match lists.sorted_access(list, depth) {
                Some((obj, score)) => {
                    progressed = true;
                    last_scores[list] = score;
                    if !resolved.contains_key(&obj) {
                        seen.entry(obj).or_insert_with(|| vec![None; m])[list] = Some(score);
                    }
                }
                None => {
                    exhausted[list] = true;
                    last_scores[list] = FLOOR;
                }
            }
        }
        depth += 1;

        let upper = |e: &Vec<Option<f64>>| -> f64 {
            let v: Vec<f64> = e
                .iter()
                .enumerate()
                .map(|(l, s)| s.unwrap_or(last_scores[l]))
                .collect();
            agg.apply(&v)
        };

        // Every h-th round: resolve the best unresolved candidate via
        // random accesses (the TA-style move, paid sparingly).
        if depth.is_multiple_of(h) {
            let best_unresolved = seen
                .iter()
                .map(|(&o, e)| (o, upper(e)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)));
            if let Some((obj, _)) = best_unresolved {
                let entry = seen.remove(&obj).unwrap();
                let mut scores = Vec::with_capacity(m);
                for (l, s) in entry.iter().enumerate() {
                    match s {
                        Some(v) => scores.push(*v),
                        None => scores.push(
                            lists
                                .random_access(l, obj)
                                .expect("object exists in all lists"),
                        ),
                    }
                }
                resolved.insert(obj, agg.apply(&scores));
            }
        }

        // Stop test: k resolved objects beat every unresolved upper
        // bound and the unseen threshold.
        if resolved.len() >= k {
            let mut res: Vec<(ObjectId, f64)> = resolved.iter().map(|(&o, &a)| (o, a)).collect();
            res.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            let kth = res[k - 1].1;
            let max_unresolved = seen.values().map(upper).fold(f64::NEG_INFINITY, f64::max);
            let unseen = if exhausted.iter().all(|&x| x) {
                f64::NEG_INFINITY
            } else {
                agg.apply(&last_scores)
            };
            if kth >= max_unresolved.max(unseen) {
                res.truncate(k);
                return res;
            }
        }
        if !progressed {
            // Lists exhausted: resolve everything left with the floor.
            let mut res: Vec<(ObjectId, f64)> = resolved.iter().map(|(&o, &a)| (o, a)).collect();
            for (&o, e) in &seen {
                let v: Vec<f64> = e.iter().map(|s| s.unwrap_or(FLOOR)).collect();
                res.push((o, agg.apply(&v)));
            }
            res.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            res.truncate(k);
            return res;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: usize, seedish: u64) -> RankedLists {
        let mut s = seedish;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 10_000) as f64 / 10_000.0
        };
        let lists = (0..3)
            .map(|_| (0..n as u64).map(|o| (o, next())).collect())
            .collect();
        RankedLists::new(lists)
    }

    #[test]
    fn matches_oracle_across_cost_ratios() {
        for seed in [5u64, 50, 500] {
            for h in [1usize, 3, 10] {
                let mut l = make(60, seed);
                for k in [1usize, 5, 15] {
                    let got = combined_topk(&mut l, k, Aggregation::Sum, h);
                    let want = l.oracle_topk(k, Aggregation::Sum);
                    // Aggregates must match position-wise (ties allowed).
                    assert_eq!(got.len(), want.len());
                    for (g, w) in got.iter().zip(&want) {
                        assert!(
                            (g.1 - w.1).abs() < 1e-9,
                            "seed {seed} h {h} k {k}: {} vs {}",
                            g.1,
                            w.1
                        );
                    }
                    l.reset_counters();
                }
            }
        }
    }

    #[test]
    fn larger_h_means_fewer_random_accesses() {
        let base = make(300, 99);
        let lists: Vec<Vec<(u64, f64)>> = (0..3)
            .map(|l| {
                base.oracle_objects()
                    .iter()
                    .map(|&o| (o, base.oracle_scores(o)[l]))
                    .collect()
            })
            .collect();
        let mut randoms = Vec::new();
        for h in [1usize, 5, 25] {
            let mut l = RankedLists::new(lists.clone());
            let _ = combined_topk(&mut l, 5, Aggregation::Sum, h);
            randoms.push(l.counters().random);
        }
        assert!(
            randoms[0] >= randoms[1] && randoms[1] >= randoms[2],
            "random accesses should fall as h grows: {randoms:?}"
        );
    }

    #[test]
    fn k_larger_than_n() {
        let mut l = make(5, 1);
        let got = combined_topk(&mut l, 50, Aggregation::Sum, 3);
        assert_eq!(got.len(), 5);
    }
}
