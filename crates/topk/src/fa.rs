//! Fagin's Algorithm (FA) — the 1996 original that started the
//! middleware top-k line (Part 1 of the paper). Correct for monotone
//! aggregations but *not* instance-optimal: its stopping rule waits for
//! `k` objects to be seen in **all** lists, which can force far deeper
//! scans than TA's threshold rule.

use crate::lists::{Aggregation, ObjectId, RankedLists};
use anyk_storage::{FxHashMap, FxHashSet};

/// Top-k via Fagin's Algorithm. Returns `(object, aggregate)` sorted by
/// aggregate descending (ties by object id). Access costs accumulate in
/// `lists.counters()`.
pub fn fagin_topk(lists: &mut RankedLists, k: usize, agg: Aggregation) -> Vec<(ObjectId, f64)> {
    let m = lists.num_lists();
    if m == 0 || k == 0 {
        return Vec::new();
    }
    // Phase 1: parallel sorted access until >= k objects seen in every
    // list.
    let mut seen_in: FxHashMap<ObjectId, u32> = FxHashMap::default();
    let mut seen_everywhere: FxHashSet<ObjectId> = FxHashSet::default();
    let mut partial: FxHashMap<ObjectId, Vec<Option<f64>>> = FxHashMap::default();
    let mut depth = 0usize;
    let mut exhausted = false;
    while seen_everywhere.len() < k && !exhausted {
        for list in 0..m {
            match lists.sorted_access(list, depth) {
                Some((obj, score)) => {
                    let entry = partial.entry(obj).or_insert_with(|| vec![None; m]);
                    if entry[list].is_none() {
                        entry[list] = Some(score);
                        let c = seen_in.entry(obj).or_insert(0);
                        *c += 1;
                        if *c as usize == m {
                            seen_everywhere.insert(obj);
                        }
                    }
                }
                None => {
                    exhausted = true;
                }
            }
        }
        depth += 1;
    }
    // Phase 2: random access to complete every seen object.
    let mut scored: Vec<(ObjectId, f64)> = Vec::with_capacity(partial.len());
    for (obj, entry) in partial.iter() {
        let mut scores = Vec::with_capacity(m);
        for (list, s) in entry.iter().enumerate() {
            match s {
                Some(v) => scores.push(*v),
                None => {
                    let v = lists
                        .random_access(list, *obj)
                        .expect("object must exist in all lists");
                    scores.push(v);
                }
            }
        }
        scored.push((*obj, agg.apply(&scores)));
    }
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: usize, seedish: u64) -> RankedLists {
        // Deterministic pseudo-random scores.
        let mut s = seedish;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 10_000) as f64 / 10_000.0
        };
        let lists = (0..3)
            .map(|_| (0..n as u64).map(|o| (o, next())).collect())
            .collect();
        RankedLists::new(lists)
    }

    #[test]
    fn matches_oracle() {
        for seed in [7u64, 42, 1234] {
            let mut l = make(50, seed);
            for k in [1usize, 3, 10] {
                let got = fagin_topk(&mut l, k, Aggregation::Sum);
                let want = l.oracle_topk(k, Aggregation::Sum);
                let g: Vec<_> = got.iter().map(|x| x.0).collect();
                let w: Vec<_> = want.iter().map(|x| x.0).collect();
                assert_eq!(g, w, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn min_aggregation() {
        let mut l = make(30, 99);
        let got = fagin_topk(&mut l, 5, Aggregation::Min);
        let want = l.oracle_topk(5, Aggregation::Min);
        assert_eq!(
            got.iter().map(|x| x.0).collect::<Vec<_>>(),
            want.iter().map(|x| x.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn k_larger_than_n() {
        let mut l = make(5, 3);
        let got = fagin_topk(&mut l, 50, Aggregation::Sum);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn costs_are_counted() {
        let mut l = make(100, 5);
        let _ = fagin_topk(&mut l, 3, Aggregation::Sum);
        assert!(l.counters().sorted > 0);
    }
}
