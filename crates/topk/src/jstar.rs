//! J* (Natsev et al., VLDB 2001) — A*-style incremental top-k join over
//! ranked inputs (Part 1 of the paper).
//!
//! States are partial join combinations over a fixed chain of inputs:
//! a prefix of chosen tuples plus a scan position in the next input.
//! Each state carries an optimistic bound — its real prefix weight plus
//! the best-possible weight of everything unbound — and a priority
//! queue pops states in bound order. Complete states pop in exact
//! ranked order (A* with admissible, consistent heuristics).
//!
//! Like all Part-1 algorithms, J* is analyzed in accesses, not RAM
//! cost: its state space is the paper's "large intermediate result" in
//! disguise — adversarial instances make it explore huge frontiers.

use anyk_storage::{Relation, RowId, Value};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A chain join specification: `inputs[i]` joins `inputs[i+1]` on
/// `inputs[i].values[right_of(i)] == inputs[i+1].values[left_of(i+1)]`
/// — for binary edge relations this is the standard path query.
pub struct ChainSpec {
    /// Position of the join attribute towards the *next* input.
    pub out_pos: Vec<usize>,
    /// Position of the join attribute towards the *previous* input.
    pub in_pos: Vec<usize>,
}

impl ChainSpec {
    /// The standard binary-edge path chain: join col 1 of input i with
    /// col 0 of input i+1.
    pub fn edge_path(num_inputs: usize) -> Self {
        ChainSpec {
            out_pos: vec![1; num_inputs],
            in_pos: vec![0; num_inputs],
        }
    }
}

struct State {
    bound: f64,
    seq: u64,
    /// Chosen row per input for the first `prefix_len` inputs.
    prefix: Vec<RowId>,
    /// Scan position in input `prefix.len()` (sorted order).
    scan: usize,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by bound.
        other
            .bound
            .partial_cmp(&self.bound)
            .expect("no NaN")
            .then(other.seq.cmp(&self.seq))
    }
}

/// Statistics of a J* run.
#[derive(Debug, Clone, Copy, Default)]
pub struct JStarStats {
    /// States popped from the priority queue.
    pub states_popped: u64,
    /// Peak queue size (the intermediate-state memory cost).
    pub peak_queue: u64,
}

/// Top-k over a chain join via J*. Returns `(total weight, one row id
/// per input)` in non-decreasing weight order (fewer than `k` if the
/// join is smaller). Inputs are sorted by weight internally (that is
/// the ranked-input assumption of the algorithm).
pub fn jstar_topk(
    rels: &[Relation],
    spec: &ChainSpec,
    k: usize,
) -> (Vec<(f64, Vec<RowId>)>, JStarStats) {
    let m = rels.len();
    assert!(m >= 1);
    let mut stats = JStarStats::default();
    // Sorted orders per input (weight ascending).
    let orders: Vec<Vec<RowId>> = rels
        .iter()
        .map(|r| {
            let mut o: Vec<RowId> = (0..r.len() as RowId).collect();
            o.sort_by(|&a, &b| r.weight(a).cmp(&r.weight(b)).then(a.cmp(&b)));
            o
        })
        .collect();
    // Optimistic per-input minimum weights (suffix sums).
    let min_w: Vec<f64> = rels
        .iter()
        .zip(&orders)
        .map(|(r, o)| o.first().map_or(f64::INFINITY, |&i| r.weight(i).get()))
        .collect();
    let mut suffix_min: Vec<f64> = vec![0.0; m + 1];
    for i in (0..m).rev() {
        suffix_min[i] = suffix_min[i + 1] + min_w[i];
    }
    if min_w.iter().any(|w| w.is_infinite()) {
        return (Vec::new(), stats); // an empty input: empty join
    }

    let prefix_weight = |prefix: &[RowId]| -> f64 {
        prefix
            .iter()
            .enumerate()
            .map(|(i, &r)| rels[i].weight(r).get())
            .sum()
    };
    let joins = |prefix: &[RowId], cand: RowId| -> bool {
        if prefix.is_empty() {
            return true;
        }
        let i = prefix.len();
        let prev: Value = rels[i - 1].row(*prefix.last().unwrap())[spec.out_pos[i - 1]];
        rels[i].row(cand)[spec.in_pos[i]] == prev
    };

    let mut heap: BinaryHeap<State> = BinaryHeap::new();
    let mut seq = 0u64;
    heap.push(State {
        bound: suffix_min[0],
        seq,
        prefix: Vec::new(),
        scan: 0,
    });
    let mut out = Vec::new();
    while let Some(st) = heap.pop() {
        stats.states_popped += 1;
        let i = st.prefix.len();
        if i == m {
            out.push((st.bound, st.prefix));
            if out.len() == k {
                break;
            }
            continue;
        }
        // Find the next joining tuple at scan position >= st.scan.
        let mut pos = st.scan;
        while pos < orders[i].len() && !joins(&st.prefix, orders[i][pos]) {
            pos += 1;
        }
        if pos < orders[i].len() {
            let cand = orders[i][pos];
            // Child A: bind it.
            let mut prefix = st.prefix.clone();
            prefix.push(cand);
            let w = prefix_weight(&prefix);
            seq += 1;
            heap.push(State {
                bound: w + suffix_min[i + 1],
                seq,
                prefix,
                scan: 0,
            });
            // Child B: skip it, keep searching deeper.
            if pos + 1 < orders[i].len() {
                // Bound: prefix + weight of the next candidate position
                // (anything bound later is at least as heavy) + rest.
                let nb = prefix_weight(&st.prefix)
                    + rels[i].weight(orders[i][pos + 1]).get()
                    + suffix_min[i + 1];
                seq += 1;
                heap.push(State {
                    bound: nb,
                    seq,
                    prefix: st.prefix,
                    scan: pos + 1,
                });
            }
        }
        stats.peak_queue = stats.peak_queue.max(heap.len() as u64);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_storage::{RelationBuilder, Schema};

    fn edge_rel(rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    /// Oracle: all chain results, sorted by total weight.
    fn oracle(rels: &[Relation], spec: &ChainSpec) -> Vec<f64> {
        fn rec(
            rels: &[Relation],
            spec: &ChainSpec,
            i: usize,
            last: Option<Value>,
            w: f64,
            out: &mut Vec<f64>,
        ) {
            if i == rels.len() {
                out.push(w);
                return;
            }
            for r in 0..rels[i].len() as RowId {
                let row = rels[i].row(r);
                if let Some(l) = last {
                    if row[spec.in_pos[i]] != l {
                        continue;
                    }
                }
                rec(
                    rels,
                    spec,
                    i + 1,
                    Some(row[spec.out_pos[i]]),
                    w + rels[i].weight(r).get(),
                    out,
                );
            }
        }
        let mut out = Vec::new();
        rec(rels, spec, 0, None, 0.0, &mut out);
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }

    #[test]
    fn matches_oracle_on_path() {
        let rels = vec![
            edge_rel(&[(1, 2, 0.5), (1, 3, 1.0), (4, 2, 0.25)]),
            edge_rel(&[(2, 5, 1.0), (3, 5, 0.125), (2, 6, 2.0)]),
            edge_rel(&[(5, 9, 0.75), (6, 9, 0.5), (5, 8, 3.0)]),
        ];
        let spec = ChainSpec::edge_path(3);
        let want = oracle(&rels, &spec);
        let (got, _) = jstar_topk(&rels, &spec, 100);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g.0 - w).abs() < 1e-9, "{} vs {w}", g.0);
        }
    }

    #[test]
    fn k_limits_output() {
        let rels = vec![
            edge_rel(&[(1, 2, 0.5), (3, 2, 0.25)]),
            edge_rel(&[(2, 5, 1.0), (2, 6, 0.125)]),
        ];
        let spec = ChainSpec::edge_path(2);
        let (got, _) = jstar_topk(&rels, &spec, 2);
        assert_eq!(got.len(), 2);
        assert!(got[0].0 <= got[1].0);
    }

    #[test]
    fn empty_join() {
        let rels = vec![edge_rel(&[(1, 2, 0.5)]), edge_rel(&[(9, 5, 1.0)])];
        let spec = ChainSpec::edge_path(2);
        let (got, _) = jstar_topk(&rels, &spec, 5);
        assert!(got.is_empty());
    }

    #[test]
    fn single_input() {
        let rels = vec![edge_rel(&[(1, 2, 2.0), (3, 4, 1.0)])];
        let spec = ChainSpec::edge_path(1);
        let (got, _) = jstar_topk(&rels, &spec, 10);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 1.0);
    }
}
