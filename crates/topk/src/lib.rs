//! # anyk-topk
//!
//! Classic top-k algorithms from Part 1 of *Optimal Join Algorithms Meet
//! Top-k*: the middleware family (Fagin's Algorithm, the Threshold
//! Algorithm, No-Random-Access) and the top-k join family (HRJN
//! rank-join operators, a J*-style A* search).
//!
//! ## Two cost models, two conventions
//!
//! The **middleware model** ([`lists`], [`fa`], [`ta`], [`nra`]) follows
//! the literature: `m` ranked lists over a shared object-id space,
//! scores sorted *descending* (higher = better), cost = number of sorted
//! plus random accesses. This is the model in which TA is
//! instance-optimal, and the model the paper criticizes for ignoring
//! join cost.
//!
//! The **join model** ([`rank_join`], [`jstar`]) uses the same
//! convention as `anyk-core`: tuple weights, *lower = better*, inputs
//! sorted ascending — so rank-join and any-k run on identical workloads
//! and can be compared head-to-head in the RAM model (experiment E8:
//! when the top answer needs tuples deep in the lists, rank-join's
//! buffered intermediate state blows up while any-k stays linear).

pub mod ca;
pub mod fa;
pub mod jstar;
pub mod lists;
pub mod nra;
pub mod rank_join;
pub mod ta;

pub use ca::combined_topk;
pub use fa::fagin_topk;
pub use jstar::jstar_topk;
pub use lists::{Aggregation, ObjectId, RankedLists};
pub use nra::nra_topk;
pub use rank_join::{RankJoin, RjTuple, SortedScan};
pub use ta::threshold_topk;
