//! The middleware data model of Fagin-style top-k: `m` ranked lists
//! over a shared object-id space ("a single table partitioned
//! vertically, each partition managed by a different external service",
//! Part 1 of the paper).
//!
//! Every access is counted: **sorted accesses** walk a list top-down,
//! **random accesses** fetch one object's score from one list by id.
//! The middleware cost model charges only for these — the computation
//! in between is "free", which is precisely the assumption the paper's
//! RAM-model re-analysis challenges.

use anyk_storage::FxHashMap;

/// Object identifier shared across all lists.
pub type ObjectId = u64;

/// Monotone score aggregation (higher aggregate = better object).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Sum of per-list scores.
    Sum,
    /// Minimum per-list score.
    Min,
    /// Maximum per-list score.
    Max,
}

impl Aggregation {
    /// Aggregate a full score vector.
    #[inline]
    pub fn apply(&self, scores: &[f64]) -> f64 {
        match self {
            Aggregation::Sum => scores.iter().sum(),
            Aggregation::Min => scores.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregation::Max => scores.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Access counters (the middleware cost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounters {
    /// Sorted accesses performed.
    pub sorted: u64,
    /// Random accesses performed.
    pub random: u64,
}

impl AccessCounters {
    /// Combined middleware cost with the classical weighting c_s = c_r
    /// = 1 (weights can be applied by callers when needed).
    pub fn total(&self) -> u64 {
        self.sorted + self.random
    }
}

/// `m` ranked lists with counted access methods.
#[derive(Debug)]
pub struct RankedLists {
    /// Per list: `(object, score)` sorted by score descending.
    lists: Vec<Vec<(ObjectId, f64)>>,
    /// Per list: object -> score (random access).
    index: Vec<FxHashMap<ObjectId, f64>>,
    counters: AccessCounters,
}

impl RankedLists {
    /// Build from per-list score assignments. Every object must appear
    /// in every list (the top-k selection model joins 1:1 on object
    /// id). Lists are sorted descending internally.
    pub fn new(mut lists: Vec<Vec<(ObjectId, f64)>>) -> Self {
        for l in &mut lists {
            l.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        }
        let index = lists
            .iter()
            .map(|l| l.iter().copied().collect::<FxHashMap<_, _>>())
            .collect();
        RankedLists {
            lists,
            index,
            counters: AccessCounters::default(),
        }
    }

    /// Number of lists (`m`).
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Number of objects (length of each list).
    pub fn num_objects(&self) -> usize {
        self.lists.first().map_or(0, Vec::len)
    }

    /// Sorted access: the entry at `depth` (0-based) of `list`.
    pub fn sorted_access(&mut self, list: usize, depth: usize) -> Option<(ObjectId, f64)> {
        let e = self.lists[list].get(depth).copied();
        if e.is_some() {
            self.counters.sorted += 1;
        }
        e
    }

    /// Random access: `obj`'s score in `list`.
    pub fn random_access(&mut self, list: usize, obj: ObjectId) -> Option<f64> {
        self.counters.random += 1;
        self.index[list].get(&obj).copied()
    }

    /// Access counters so far.
    pub fn counters(&self) -> AccessCounters {
        self.counters
    }

    /// Reset counters (between algorithm runs on shared data).
    pub fn reset_counters(&mut self) {
        self.counters = AccessCounters::default();
    }

    /// Uncounted full-score lookup — for test oracles only.
    pub fn oracle_scores(&self, obj: ObjectId) -> Vec<f64> {
        self.index
            .iter()
            .map(|ix| *ix.get(&obj).expect("object in all lists"))
            .collect()
    }

    /// Uncounted list of all object ids — for test oracles only.
    pub fn oracle_objects(&self) -> Vec<ObjectId> {
        self.lists[0].iter().map(|&(o, _)| o).collect()
    }

    /// Brute-force top-k oracle (uncounted): `(object, aggregate)` in
    /// descending aggregate order, ties by object id.
    pub fn oracle_topk(&self, k: usize, agg: Aggregation) -> Vec<(ObjectId, f64)> {
        let mut all: Vec<(ObjectId, f64)> = self
            .oracle_objects()
            .into_iter()
            .map(|o| (o, agg.apply(&self.oracle_scores(o))))
            .collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RankedLists {
        RankedLists::new(vec![
            vec![(1, 0.9), (2, 0.8), (3, 0.1)],
            vec![(1, 0.2), (2, 0.7), (3, 0.95)],
        ])
    }

    #[test]
    fn sorted_access_descends() {
        let mut l = sample();
        assert_eq!(l.sorted_access(1, 0), Some((3, 0.95)));
        assert_eq!(l.sorted_access(1, 1), Some((2, 0.7)));
        assert_eq!(l.sorted_access(1, 5), None);
        assert_eq!(l.counters().sorted, 2);
    }

    #[test]
    fn random_access_counts() {
        let mut l = sample();
        assert_eq!(l.random_access(0, 2), Some(0.8));
        assert_eq!(l.random_access(0, 99), None);
        assert_eq!(l.counters().random, 2);
    }

    #[test]
    fn aggregations() {
        assert_eq!(Aggregation::Sum.apply(&[1.0, 2.0]), 3.0);
        assert_eq!(Aggregation::Min.apply(&[1.0, 2.0]), 1.0);
        assert_eq!(Aggregation::Max.apply(&[1.0, 2.0]), 2.0);
    }

    #[test]
    fn oracle_topk_sorts_desc() {
        let l = sample();
        let top = l.oracle_topk(2, Aggregation::Sum);
        // sums: 1 -> 1.1, 2 -> 1.5, 3 -> 1.05.
        assert_eq!(top[0].0, 2);
        assert_eq!(top[1].0, 1);
    }
}
