//! NRA — No Random Access (Fagin–Lotem–Naor). For sources that only
//! support sorted access, NRA maintains a `[lower, upper]` bound
//! interval per seen object and stops when `k` objects' lower bounds
//! dominate every other object's upper bound.
//!
//! NRA trades random accesses for (potentially many) more sorted
//! accesses and bookkeeping — the bookkeeping cost is exactly what the
//! middleware model hides and the paper's RAM-model lens exposes.

use crate::lists::{Aggregation, ObjectId, RankedLists};
use anyk_storage::FxHashMap;

/// Top-k via NRA. Returns `(object, aggregate)` in descending order of
/// the *exact* aggregate (all returned objects are fully resolved by
/// sorted accesses or bounded sufficiently; exact values are computed
/// from the seen scores plus, when a list exhausted, its bottom score).
///
/// Guarantees the correct top-k *set* for monotone aggregations; within
/// the set, objects whose intervals collapsed are ordered exactly.
pub fn nra_topk(lists: &mut RankedLists, k: usize, agg: Aggregation) -> Vec<(ObjectId, f64)> {
    let m = lists.num_lists();
    if m == 0 || k == 0 {
        return Vec::new();
    }
    // Per seen object: per-list Option<score>.
    let mut seen: FxHashMap<ObjectId, Vec<Option<f64>>> = FxHashMap::default();
    let mut last_scores: Vec<f64> = vec![f64::INFINITY; m];
    let mut exhausted: Vec<bool> = vec![false; m];
    let mut depth = 0usize;

    // For lower bounds we need the worst possible score of an unseen
    // cell. With descending lists the safe completion for a missing
    // cell is the list's *bottom* score, unknown until exhaustion; the
    // classical presentation assumes scores in [0, 1] — we assume
    // scores >= 0 and use 0 (documented; workloads comply).
    const FLOOR: f64 = 0.0;

    loop {
        let mut progressed = false;
        for list in 0..m {
            if exhausted[list] {
                continue;
            }
            match lists.sorted_access(list, depth) {
                Some((obj, score)) => {
                    progressed = true;
                    last_scores[list] = score;
                    let entry = seen.entry(obj).or_insert_with(|| vec![None; m]);
                    entry[list] = Some(score);
                }
                None => {
                    exhausted[list] = true;
                    // No unseen object can appear in this list anymore;
                    // bound contribution drops to the floor.
                    last_scores[list] = FLOOR;
                }
            }
        }
        depth += 1;

        // Bounds.
        let lower = |e: &Vec<Option<f64>>| -> f64 {
            let v: Vec<f64> = e.iter().map(|s| s.unwrap_or(FLOOR)).collect();
            agg.apply(&v)
        };
        let upper = |e: &Vec<Option<f64>>| -> f64 {
            let v: Vec<f64> = e
                .iter()
                .enumerate()
                .map(|(l, s)| s.unwrap_or(last_scores[l]))
                .collect();
            agg.apply(&v)
        };

        if seen.len() >= k {
            // k-th largest lower bound.
            let mut lowers: Vec<(f64, ObjectId)> =
                seen.iter().map(|(&o, e)| (lower(e), o)).collect();
            lowers.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
            let kth_lower = lowers[k - 1].0;
            let topk_ids: Vec<ObjectId> = lowers[..k].iter().map(|&(_, o)| o).collect();
            // Stop when no other object's upper bound beats the k-th
            // lower bound, and the top-k set itself is resolved (each
            // member's upper equals... classical NRA stops when the
            // kth lower >= max upper among the rest).
            let max_other_upper = seen
                .iter()
                .filter(|(o, _)| !topk_ids.contains(o))
                .map(|(_, e)| upper(e))
                .fold(f64::NEG_INFINITY, f64::max);
            // Unseen objects are bounded by the last seen scores.
            let unseen_upper = if exhausted.iter().all(|&x| x) {
                f64::NEG_INFINITY
            } else {
                agg.apply(&last_scores)
            };
            let threat = max_other_upper.max(unseen_upper);
            if kth_lower >= threat {
                // Resolve exact ordering within the top-k set: continue
                // until each member's interval collapses OR lists end;
                // a simpler sound completion: order by upper==lower
                // when possible. We report the lower bounds (exact once
                // every member's missing cells resolved or floored).
                let mut out: Vec<(ObjectId, f64)> =
                    topk_ids.iter().map(|&o| (o, lower(&seen[&o]))).collect();
                out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                return out;
            }
        }
        if !progressed {
            // Everything read; return exact top-k of seen objects.
            let mut out: Vec<(ObjectId, f64)> = seen
                .iter()
                .map(|(&o, e)| {
                    let v: Vec<f64> = e.iter().map(|s| s.unwrap_or(FLOOR)).collect();
                    (o, agg.apply(&v))
                })
                .collect();
            out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            out.truncate(k);
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: usize, seedish: u64) -> RankedLists {
        let mut s = seedish;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 10_000) as f64 / 10_000.0
        };
        let lists = (0..3)
            .map(|_| (0..n as u64).map(|o| (o, next())).collect())
            .collect();
        RankedLists::new(lists)
    }

    #[test]
    fn topk_set_matches_oracle() {
        for seed in [11u64, 222, 3333] {
            let mut l = make(50, seed);
            for k in [1usize, 3, 7] {
                let got: Vec<ObjectId> = nra_topk(&mut l, k, Aggregation::Sum)
                    .iter()
                    .map(|x| x.0)
                    .collect();
                let mut want: Vec<ObjectId> = l
                    .oracle_topk(k, Aggregation::Sum)
                    .iter()
                    .map(|x| x.0)
                    .collect();
                // NRA guarantees the set; order of equal-score members
                // may differ — compare as sets.
                let mut g = got.clone();
                g.sort();
                want.sort();
                assert_eq!(g, want, "seed {seed} k {k}");
                l.reset_counters();
            }
        }
    }

    #[test]
    fn uses_no_random_access() {
        let mut l = make(40, 5);
        let _ = nra_topk(&mut l, 5, Aggregation::Sum);
        assert_eq!(l.counters().random, 0);
        assert!(l.counters().sorted > 0);
    }

    #[test]
    fn top_heavy_stops_early() {
        let n = 500u64;
        let lists: Vec<Vec<(u64, f64)>> = (0..2)
            .map(|_| {
                let mut v: Vec<(u64, f64)> = (1..n).map(|o| (o, 0.01)).collect();
                v.push((0, 10.0));
                v
            })
            .collect();
        let mut l = RankedLists::new(lists);
        let got = nra_topk(&mut l, 1, Aggregation::Sum);
        assert_eq!(got[0].0, 0);
        assert!(l.counters().sorted < 100);
    }
}
