//! HRJN-style rank join (Ilyas–Aref–Elmagarmid, VLDB J. 2004) — the
//! flagship "top-k join" operator of Part 1.
//!
//! A binary pull-based operator over two weight-ascending inputs. It
//! buffers everything it has pulled, joins new arrivals against the
//! opposite buffer, and holds join results in an output heap until the
//! **corner bound** guarantees no future result can be lighter:
//!
//! ```text
//! T = min( wL(first) + wR(current),  wL(current) + wR(first) )
//! ```
//!
//! Operators compose into left-deep trees (the output is again a
//! weight-ascending `RjTuple` stream), which is how multiway top-k
//! joins were built in this line of work.
//!
//! The paper's critique (reproduced as experiment E8): the buffers are
//! *intermediate results*. On adversarial inputs — e.g. inverted weight
//! correlation, where the lightest combination joins tuples from the
//! bottoms of both inputs — HRJN pulls everything and its buffered
//! state approaches the full quadratic join, while any-k's
//! preprocessing stays O(n).

use anyk_storage::{FxHashMap, Relation, RowId, Value};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A tuple flowing between rank-join operators: values + weight.
#[derive(Debug, Clone, PartialEq)]
pub struct RjTuple {
    /// Concatenated attribute values.
    pub values: Vec<Value>,
    /// Accumulated weight (lower = better).
    pub weight: f64,
}

/// Heap wrapper ordered by weight (min first) with deterministic ties.
#[derive(Debug)]
struct ByWeight(RjTuple, u64);
impl PartialEq for ByWeight {
    fn eq(&self, other: &Self) -> bool {
        self.0.weight == other.0.weight && self.1 == other.1
    }
}
impl Eq for ByWeight {}
impl PartialOrd for ByWeight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ByWeight {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .weight
            .partial_cmp(&other.0.weight)
            .expect("no NaN weights")
            .then(self.1.cmp(&other.1))
    }
}

/// Statistics exposed by every rank-join input/operator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankJoinStats {
    /// Tuples pulled from base inputs (scan depth).
    pub pulled: u64,
    /// Peak buffered tuples across both hash buffers (the RAM-model
    /// intermediate-result cost).
    pub peak_buffered: u64,
}

/// A weight-ascending scan over a relation — the leaf input of a
/// rank-join tree. Sorting (by weight) happens at construction, like
/// the sorted lists rank join assumes.
pub struct SortedScan {
    rel: Relation,
    order: Vec<RowId>,
    pos: usize,
}

impl SortedScan {
    /// Sort `rel` by weight ascending and scan it.
    pub fn new(rel: Relation) -> Self {
        let mut order: Vec<RowId> = (0..rel.len() as RowId).collect();
        order.sort_by(|&a, &b| rel.weight(a).cmp(&rel.weight(b)).then(a.cmp(&b)));
        SortedScan { rel, order, pos: 0 }
    }
}

impl Iterator for SortedScan {
    type Item = RjTuple;

    fn next(&mut self) -> Option<RjTuple> {
        let &rid = self.order.get(self.pos)?;
        self.pos += 1;
        Some(RjTuple {
            values: self.rel.row(rid).to_vec(),
            weight: self.rel.weight(rid).get(),
        })
    }
}

/// The HRJN binary rank-join operator. `left_key`/`right_key` are
/// positions into the respective input tuples' values; outputs
/// concatenate left values then right values.
///
/// ```
/// use anyk_topk::rank_join::{RankJoin, SortedScan};
/// use anyk_storage::{RelationBuilder, Schema};
///
/// let mut l = RelationBuilder::new(Schema::new(["a", "b"]));
/// l.push_ints(&[1, 2], 0.5);
/// let mut r = RelationBuilder::new(Schema::new(["b", "c"]));
/// r.push_ints(&[2, 3], 0.25);
/// r.push_ints(&[2, 4], 1.0);
/// let rj = RankJoin::new(
///     SortedScan::new(l.finish()),
///     SortedScan::new(r.finish()),
///     vec![1], // left join key: column b
///     vec![0], // right join key: column b
/// );
/// let weights: Vec<f64> = rj.map(|t| t.weight).collect();
/// assert_eq!(weights, vec![0.75, 1.5]); // emitted in weight order
/// ```
pub struct RankJoin<L: Iterator<Item = RjTuple>, R: Iterator<Item = RjTuple>> {
    left: L,
    right: R,
    left_key: Vec<usize>,
    right_key: Vec<usize>,
    left_buf: FxHashMap<Vec<Value>, Vec<RjTuple>>,
    right_buf: FxHashMap<Vec<Value>, Vec<RjTuple>>,
    left_first: Option<f64>,
    right_first: Option<f64>,
    left_cur: f64,
    right_cur: f64,
    left_done: bool,
    right_done: bool,
    /// Pull side alternation flag.
    pull_left: bool,
    out: BinaryHeap<Reverse<ByWeight>>,
    seq: u64,
    buffered: u64,
    stats: RankJoinStats,
}

impl<L: Iterator<Item = RjTuple>, R: Iterator<Item = RjTuple>> RankJoin<L, R> {
    /// Create the operator joining `left.values[left_key] ==
    /// right.values[right_key]`.
    pub fn new(left: L, right: R, left_key: Vec<usize>, right_key: Vec<usize>) -> Self {
        assert_eq!(left_key.len(), right_key.len());
        RankJoin {
            left,
            right,
            left_key,
            right_key,
            left_buf: FxHashMap::default(),
            right_buf: FxHashMap::default(),
            left_first: None,
            right_first: None,
            left_cur: f64::NEG_INFINITY,
            right_cur: f64::NEG_INFINITY,
            left_done: false,
            right_done: false,
            pull_left: true,
            out: BinaryHeap::new(),
            seq: 0,
            buffered: 0,
            stats: RankJoinStats::default(),
        }
    }

    /// Run statistics (scan depth, peak buffer size).
    pub fn stats(&self) -> RankJoinStats {
        self.stats
    }

    /// The corner bound: a lower bound on any future join result's
    /// weight. Infinite once both inputs are exhausted.
    fn threshold(&self) -> f64 {
        match (self.left_done, self.right_done) {
            (true, true) => f64::INFINITY,
            _ => {
                let lf = self.left_first.unwrap_or(f64::INFINITY);
                let rf = self.right_first.unwrap_or(f64::INFINITY);
                let a = if self.right_done {
                    f64::INFINITY
                } else {
                    lf + self.right_cur.max(rf)
                };
                let b = if self.left_done {
                    f64::INFINITY
                } else {
                    self.left_cur.max(lf) + rf
                };
                a.min(b)
            }
        }
    }

    fn pull_one(&mut self) {
        // Alternate sides; skip exhausted sides.
        for _ in 0..2 {
            let side_left = self.pull_left;
            self.pull_left = !self.pull_left;
            if side_left && !self.left_done {
                match self.left.next() {
                    Some(t) => {
                        self.stats.pulled += 1;
                        if self.left_first.is_none() {
                            self.left_first = Some(t.weight);
                        }
                        self.left_cur = t.weight;
                        let key: Vec<Value> = self.left_key.iter().map(|&p| t.values[p]).collect();
                        // Join against the right buffer.
                        if let Some(matches) = self.right_buf.get(&key) {
                            for r in matches {
                                let mut values = t.values.clone();
                                values.extend_from_slice(&r.values);
                                self.seq += 1;
                                self.out.push(Reverse(ByWeight(
                                    RjTuple {
                                        values,
                                        weight: t.weight + r.weight,
                                    },
                                    self.seq,
                                )));
                            }
                        }
                        self.left_buf.entry(key).or_default().push(t);
                        self.buffered += 1;
                        self.stats.peak_buffered = self.stats.peak_buffered.max(self.buffered);
                        return;
                    }
                    None => self.left_done = true,
                }
            } else if !side_left && !self.right_done {
                match self.right.next() {
                    Some(t) => {
                        self.stats.pulled += 1;
                        if self.right_first.is_none() {
                            self.right_first = Some(t.weight);
                        }
                        self.right_cur = t.weight;
                        let key: Vec<Value> = self.right_key.iter().map(|&p| t.values[p]).collect();
                        if let Some(matches) = self.left_buf.get(&key) {
                            for l in matches {
                                let mut values = l.values.clone();
                                values.extend_from_slice(&t.values);
                                self.seq += 1;
                                self.out.push(Reverse(ByWeight(
                                    RjTuple {
                                        values,
                                        weight: l.weight + t.weight,
                                    },
                                    self.seq,
                                )));
                            }
                        }
                        self.right_buf.entry(key).or_default().push(t);
                        self.buffered += 1;
                        self.stats.peak_buffered = self.stats.peak_buffered.max(self.buffered);
                        return;
                    }
                    None => self.right_done = true,
                }
            }
        }
    }
}

impl<L: Iterator<Item = RjTuple>, R: Iterator<Item = RjTuple>> Iterator for RankJoin<L, R> {
    type Item = RjTuple;

    fn next(&mut self) -> Option<RjTuple> {
        loop {
            // Emit when the cheapest held result beats the bound.
            if let Some(Reverse(ByWeight(t, _))) = self.out.peek() {
                if t.weight <= self.threshold() {
                    let Reverse(ByWeight(t, _)) = self.out.pop().unwrap();
                    return Some(t);
                }
            }
            if self.left_done && self.right_done {
                return self.out.pop().map(|Reverse(ByWeight(t, _))| t);
            }
            self.pull_one();
        }
    }
}

/// A boxed rank-join stream (type-erased, for dynamic operator trees).
pub type BoxedRjStream = Box<dyn Iterator<Item = RjTuple>>;

/// Build a left-deep HRJN tree for a *path* join over binary relations:
/// `rels[0](x0,x1) ⋈ rels[1](x1,x2) ⋈ ...`, joining column 1 of the
/// accumulated stream's last relation with column 0 of the next.
/// Returns a weight-ascending stream of concatenated tuples.
pub fn rank_join_path(rels: Vec<Relation>) -> BoxedRjStream {
    assert!(!rels.is_empty());
    for r in &rels {
        assert_eq!(r.arity(), 2, "rank_join_path expects binary relations");
    }
    let mut iter = rels.into_iter();
    let mut stream: BoxedRjStream = Box::new(SortedScan::new(iter.next().unwrap()));
    let mut width = 2usize; // values per tuple in `stream`
    for rel in iter {
        let join_pos = width - 1; // last column of the accumulated tuple
        stream = Box::new(RankJoin::new(
            stream,
            SortedScan::new(rel),
            vec![join_pos],
            vec![0],
        ));
        width += 2;
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_storage::{RelationBuilder, Schema};

    fn edge_rel(rows: &[(i64, i64, f64)]) -> Relation {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for &(x, y, w) in rows {
            b.push_ints(&[x, y], w);
        }
        b.finish()
    }

    /// Oracle: all join results sorted by total weight.
    fn oracle(l: &[(i64, i64, f64)], r: &[(i64, i64, f64)]) -> Vec<f64> {
        let mut out = Vec::new();
        for &(_, b, wl) in l {
            for &(b2, _, wr) in r {
                if b == b2 {
                    out.push(wl + wr);
                }
            }
        }
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }

    #[test]
    fn binary_join_in_weight_order() {
        let l = [(1, 2, 0.5), (3, 2, 1.0), (4, 5, 0.25)];
        let r = [(2, 7, 0.125), (2, 8, 2.0), (5, 9, 1.5)];
        let rj = RankJoin::new(
            SortedScan::new(edge_rel(&l)),
            SortedScan::new(edge_rel(&r)),
            vec![1],
            vec![0],
        );
        let got: Vec<f64> = rj.map(|t| t.weight).collect();
        assert_eq!(got, oracle(&l, &r));
    }

    #[test]
    fn early_emission_on_correlated_input() {
        // Lightest tuples join: first result must come after few pulls.
        let n = 100i64;
        let l: Vec<(i64, i64, f64)> = (0..n).map(|i| (i, i, i as f64)).collect();
        let r: Vec<(i64, i64, f64)> = (0..n).map(|i| (i, i, i as f64)).collect();
        let mut rj = RankJoin::new(
            SortedScan::new(edge_rel(&l)),
            SortedScan::new(edge_rel(&r)),
            vec![1],
            vec![0],
        );
        let first = rj.next().unwrap();
        assert_eq!(first.weight, 0.0);
        assert!(rj.stats().pulled < 10, "pulled {}", rj.stats().pulled);
    }

    #[test]
    fn adversarial_inverted_weights_force_deep_scans() {
        // Anti-correlated weights: left key i has weight i, right key i
        // has weight n - i, so every join result totals exactly n. The
        // corner bound reaches n only when one side is nearly
        // exhausted — HRJN must scan deep before it can emit anything
        // (the Part-1 worst case the paper highlights).
        let n = 50i64;
        let l: Vec<(i64, i64, f64)> = (0..n).map(|i| (i, i, i as f64)).collect();
        let r: Vec<(i64, i64, f64)> = (0..n).map(|i| (i, i, (n - i) as f64)).collect();
        let mut rj = RankJoin::new(
            SortedScan::new(edge_rel(&l)),
            SortedScan::new(edge_rel(&r)),
            vec![1],
            vec![0],
        );
        let first = rj.next().unwrap();
        assert_eq!(first.weight, n as f64);
        assert!(
            rj.stats().pulled >= (n as u64) * 3 / 2,
            "must scan deep before first emission, pulled {}",
            rj.stats().pulled
        );
    }

    #[test]
    fn composes_into_left_deep_tree() {
        // 3-path via two stacked operators.
        let r1 = [(1, 2, 0.5), (1, 3, 1.0)];
        let r2 = [(2, 4, 0.25), (3, 4, 0.125), (2, 5, 3.0)];
        let r3 = [(4, 9, 1.0), (5, 9, 0.5)];
        let lower = RankJoin::new(
            SortedScan::new(edge_rel(&r1)),
            SortedScan::new(edge_rel(&r2)),
            vec![1],
            vec![0],
        );
        // lower output values: [a, b, b, c] — join on position 3 (c).
        let upper = RankJoin::new(lower, SortedScan::new(edge_rel(&r3)), vec![3], vec![0]);
        let got: Vec<f64> = upper.map(|t| t.weight).collect();
        // Oracle: paths a-b-c-d:
        // (1,2,4,9): .5+.25+1 = 1.75 ; (1,3,4,9): 1+.125+1 = 2.125
        // (1,2,5,9): .5+3+.5 = 4.0
        assert_eq!(got, vec![1.75, 2.125, 4.0]);
    }

    #[test]
    fn rank_join_path_matches_manual_tree() {
        let r1 = [(1, 2, 0.5), (1, 3, 1.0)];
        let r2 = [(2, 4, 0.25), (3, 4, 0.125), (2, 5, 3.0)];
        let r3 = [(4, 9, 1.0), (5, 9, 0.5)];
        let auto: Vec<f64> = rank_join_path(vec![edge_rel(&r1), edge_rel(&r2), edge_rel(&r3)])
            .map(|t| t.weight)
            .collect();
        assert_eq!(auto, vec![1.75, 2.125, 4.0]);
    }

    #[test]
    fn empty_inputs() {
        let rj = RankJoin::new(
            SortedScan::new(edge_rel(&[])),
            SortedScan::new(edge_rel(&[(1, 2, 0.5)])),
            vec![1],
            vec![0],
        );
        assert_eq!(rj.count(), 0);
    }
}
