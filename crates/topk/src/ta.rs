//! The Threshold Algorithm (TA) of Fagin, Lotem and Naor — the
//! Gödel-Prize-winning centerpiece of Part 1. Instance-optimal in the
//! middleware cost model among algorithms that do not make "wild
//! guesses": no correct algorithm can beat TA's access count by more
//! than a constant factor on any instance.
//!
//! The idea: after each round of sorted accesses, the aggregate of the
//! *last seen* scores is a **threshold** upper-bounding every unseen
//! object; stop as soon as `k` seen objects beat it.

use crate::lists::{Aggregation, ObjectId, RankedLists};
use anyk_storage::FxHashSet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ordered f64 for heap storage (scores are never NaN here).
#[derive(Debug, Clone, Copy, PartialEq)]
struct F(f64);
impl Eq for F {}
impl PartialOrd for F {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("no NaN scores")
    }
}

/// Top-k via the Threshold Algorithm. Returns `(object, aggregate)` in
/// descending aggregate order. Access costs accumulate in
/// `lists.counters()`.
pub fn threshold_topk(lists: &mut RankedLists, k: usize, agg: Aggregation) -> Vec<(ObjectId, f64)> {
    let m = lists.num_lists();
    if m == 0 || k == 0 {
        return Vec::new();
    }
    // Min-heap of the current top-k (by aggregate; ties by object id so
    // the final output is deterministic).
    let mut topk: BinaryHeap<Reverse<(F, ObjectId)>> = BinaryHeap::new();
    let mut seen: FxHashSet<ObjectId> = FxHashSet::default();
    let mut last_scores: Vec<f64> = vec![f64::INFINITY; m];
    let mut depth = 0usize;
    loop {
        let mut any = false;
        for (list, last) in last_scores.iter_mut().enumerate() {
            let Some((obj, score)) = lists.sorted_access(list, depth) else {
                // This list is exhausted; its contribution to the
                // threshold stays at its last (bottom) score.
                continue;
            };
            any = true;
            *last = score;
            if !seen.insert(obj) {
                continue;
            }
            // Random access to every *other* list for this object.
            let mut scores = Vec::with_capacity(m);
            for l in 0..m {
                if l == list {
                    scores.push(score);
                } else {
                    scores.push(
                        lists
                            .random_access(l, obj)
                            .expect("object must exist in all lists"),
                    );
                }
            }
            let a = agg.apply(&scores);
            if topk.len() < k {
                topk.push(Reverse((F(a), obj)));
            } else if let Some(&Reverse((F(worst), _))) = topk.peek() {
                if a > worst {
                    topk.pop();
                    topk.push(Reverse((F(a), obj)));
                }
            }
        }
        depth += 1;
        // Threshold: best possible aggregate of any unseen object.
        let tau = agg.apply(&last_scores);
        let kth = topk
            .peek()
            .map_or(f64::NEG_INFINITY, |&Reverse((F(a), _))| a);
        if topk.len() >= k && kth >= tau {
            break;
        }
        if !any {
            break; // all lists exhausted
        }
    }
    let mut out: Vec<(ObjectId, f64)> = topk.into_iter().map(|Reverse((F(a), o))| (o, a)).collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fa::fagin_topk;

    fn make(n: usize, seedish: u64) -> RankedLists {
        let mut s = seedish;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 10_000) as f64 / 10_000.0
        };
        let lists = (0..3)
            .map(|_| (0..n as u64).map(|o| (o, next())).collect())
            .collect();
        RankedLists::new(lists)
    }

    #[test]
    fn matches_oracle() {
        for seed in [7u64, 42, 1234, 777] {
            let mut l = make(60, seed);
            for k in [1usize, 2, 5, 20] {
                let got = threshold_topk(&mut l, k, Aggregation::Sum);
                let want = l.oracle_topk(k, Aggregation::Sum);
                assert_eq!(
                    got.iter().map(|x| x.0).collect::<Vec<_>>(),
                    want.iter().map(|x| x.0).collect::<Vec<_>>(),
                    "seed {seed} k {k}"
                );
                l.reset_counters();
            }
        }
    }

    #[test]
    fn ta_accesses_at_most_fa_on_correlated_lists() {
        // Correlated lists: the same ordering everywhere -> TA stops
        // after ~k rounds, FA too; on anti-correlated inputs TA's
        // threshold shines. Here we just sanity-check TA <= FA + slack
        // on a correlated instance.
        let n = 200u64;
        let lists: Vec<Vec<(u64, f64)>> = (0..3)
            .map(|_| (0..n).map(|o| (o, 1.0 - o as f64 / n as f64)).collect())
            .collect();
        let mut l1 = RankedLists::new(lists.clone());
        let _ = threshold_topk(&mut l1, 5, Aggregation::Sum);
        let ta_cost = l1.counters().total();
        let mut l2 = RankedLists::new(lists);
        let _ = fagin_topk(&mut l2, 5, Aggregation::Sum);
        let fa_cost = l2.counters().total();
        assert!(
            ta_cost <= fa_cost + 10,
            "TA {ta_cost} should not exceed FA {fa_cost} by much"
        );
    }

    #[test]
    fn early_stop_on_top_heavy_instance() {
        // Object 0 dominates everywhere: TA must stop after few rounds.
        let n = 1000u64;
        let lists: Vec<Vec<(u64, f64)>> = (0..2)
            .map(|_| {
                let mut v: Vec<(u64, f64)> = (1..n).map(|o| (o, 0.1)).collect();
                v.push((0, 100.0));
                v
            })
            .collect();
        let mut l = RankedLists::new(lists);
        let got = threshold_topk(&mut l, 1, Aggregation::Sum);
        assert_eq!(got[0].0, 0);
        assert!(
            l.counters().total() < 50,
            "TA should stop early, cost {}",
            l.counters().total()
        );
    }

    #[test]
    fn min_agg_matches_oracle() {
        let mut l = make(40, 2024);
        let got = threshold_topk(&mut l, 4, Aggregation::Min);
        let want = l.oracle_topk(4, Aggregation::Min);
        assert_eq!(
            got.iter().map(|x| x.0).collect::<Vec<_>>(),
            want.iter().map(|x| x.0).collect::<Vec<_>>()
        );
    }
}
