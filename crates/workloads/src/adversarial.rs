//! Adversarial instances — the inputs behind the paper's lower-bound
//! arguments.

use anyk_storage::{Relation, RelationBuilder, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The §3 worst-case triangle instance:
/// `R = S = T = {(1,1), (2,1), ..., (n/2,1), (1,2), ..., (1,n/2)}`.
///
/// Every binary join plan produces Θ(n²) intermediate tuples while the
/// output has only O(n) triangles (all through node 1) — the instance
/// that motivates worst-case-optimal joins. Weights are uniform random
/// (seeded) so ranked variants run on it too.
pub fn worst_case_triangle(n: usize, seed: u64) -> Vec<Relation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let half = (n / 2).max(1) as i64;
    let mut make = || {
        let schema = Schema::new(["src", "dst"]);
        let mut b = RelationBuilder::with_capacity(schema, 2 * half as usize);
        for i in 1..=half {
            b.push_ints(&[i, 1], rng.gen::<f64>());
        }
        for j in 2..=half {
            b.push_ints(&[1, j], rng.gen::<f64>());
        }
        b.finish()
    };
    vec![make(), make(), make()]
}

/// Anti-correlated rank-join pair: left key `i` weighs `i`, right key
/// `i` weighs `n - i`, so every join result totals exactly `n` and the
/// HRJN corner bound cannot certify an answer until one input is almost
/// exhausted (the Part-1 worst case).
pub fn anticorrelated_pair(n: usize) -> (Relation, Relation) {
    let mut l = RelationBuilder::new(Schema::new(["src", "dst"]));
    let mut r = RelationBuilder::new(Schema::new(["src", "dst"]));
    for i in 0..n as i64 {
        l.push_ints(&[i, i], i as f64);
        r.push_ints(&[i, i], (n as i64 - i) as f64);
    }
    (l.finish(), r.finish())
}

/// A bottom-heavy path instance of `len` relations over keys `0..n`:
/// relation `i` maps key `k` to key `k` with weight `k` when `i` is
/// even and `n - k` when odd. Consequence: every full path totals
/// roughly `len/2 * n` and the per-relation sorted orders point in
/// opposite directions — sorted-access top-k join algorithms must dig
/// to the bottom of the lists, while any-k's DP is indifferent.
pub fn bottom_heavy_path(len: usize, n: usize) -> Vec<Relation> {
    (0..len)
        .map(|i| {
            let schema = Schema::new(["src", "dst"]);
            let mut b = RelationBuilder::with_capacity(schema, n);
            for k in 0..n as i64 {
                let w = if i % 2 == 0 {
                    k as f64
                } else {
                    (n as i64 - k) as f64
                };
                b.push_ints(&[k, k], w);
            }
            b.finish()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_join::binary::binary_join;
    use anyk_join::generic_join::generic_join_materialize;
    use anyk_query::cq::{path_query, triangle_query};

    #[test]
    fn triangle_instance_shape() {
        let rels = worst_case_triangle(20, 1);
        assert_eq!(rels.len(), 3);
        // n/2 hub-in + n/2-1 hub-out edges.
        assert_eq!(rels[0].len(), 19);
    }

    #[test]
    fn triangle_instance_blows_up_binary_plans() {
        let n = 40;
        let rels = worst_case_triangle(n, 2);
        let q = triangle_query();
        let (res, stats) = binary_join(&q, &rels, &[0, 1, 2]);
        let (gj, _) = generic_join_materialize(&q, &rels, None);
        assert_eq!(res.len(), gj.len());
        // Intermediate is quadratic in n/2; output is linear-ish.
        assert!(stats.max_intermediate >= (n / 2 - 1) * (n / 2 - 1));
        assert!(res.len() < stats.max_intermediate);
    }

    #[test]
    fn anticorrelated_totals_constant() {
        let (l, r) = anticorrelated_pair(10);
        for i in 0..l.len() as u32 {
            let total = l.weight(i).get() + r.weight(i).get();
            assert_eq!(total, 10.0);
        }
    }

    #[test]
    fn bottom_heavy_paths_join_fully() {
        let rels = bottom_heavy_path(3, 20);
        let q = path_query(3);
        let (res, _) = binary_join(&q, &rels, &[0, 1, 2]);
        assert_eq!(res.len(), 20); // identity chains: one path per key
    }
}
