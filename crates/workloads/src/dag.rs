//! Layered-DAG generators for the k-shortest-path experiments (the
//! classic problem Part 3 traces any-k back to).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random layered DAG edges: `layers` transitions between layers of
/// `width` nodes, `edges_per_layer` random edges each, uniform weights
/// in `[0, 1)`. Returned as per-layer `(from, to, weight)` lists,
/// directly consumable by `anyk_core::ksp::LayeredDag`.
pub fn layered_dag_edges(
    layers: usize,
    width: u32,
    edges_per_layer: usize,
    seed: u64,
) -> Vec<Vec<(u32, u32, f64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..layers)
        .map(|_| {
            (0..edges_per_layer)
                .map(|_| {
                    (
                        rng.gen_range(0..width),
                        rng.gen_range(0..width),
                        rng.gen::<f64>(),
                    )
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_ranges() {
        let dag = layered_dag_edges(4, 10, 30, 9);
        assert_eq!(dag.len(), 4);
        for layer in &dag {
            assert_eq!(layer.len(), 30);
            for &(u, v, w) in layer {
                assert!(u < 10 && v < 10);
                assert!((0.0..1.0).contains(&w));
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            layered_dag_edges(2, 5, 10, 3),
            layered_dag_edges(2, 5, 10, 3)
        );
    }
}
