//! Random weighted edge relations: the building block of all
//! graph-pattern workloads.

use anyk_storage::{Relation, RelationBuilder, Schema};
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weight distribution for generated tuples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightDist {
    /// i.i.d. uniform in `[0, 1)`.
    Uniform,
    /// i.i.d. uniform over 12-bit dyadic rationals in `[0, 1)`. Sums of
    /// dyadics are exact in f64, so engines that associate additions
    /// differently still produce bitwise-identical costs — use this for
    /// cross-engine equality tests.
    UniformDyadic,
    /// All weights equal (ranking becomes tie-heavy; stresses
    /// tie-breaking paths).
    Constant(f64),
    /// Weight grows with the source-node id (correlated: light tuples
    /// share endpoints, so light answers exist near the top of sorted
    /// views).
    CorrelatedWithKey,
    /// Weight shrinks as the source-node id grows (anti-correlated
    /// across alternating relations when combined with
    /// `CorrelatedWithKey`; the rank-join killer).
    InverseKey,
}

impl WeightDist {
    fn sample<Rn: Rng>(&self, rng: &mut Rn, src: u64, num_nodes: u64) -> f64 {
        match self {
            WeightDist::Uniform => rng.gen::<f64>(),
            WeightDist::UniformDyadic => (rng.gen::<u32>() & 0xFFF) as f64 / 4096.0,
            WeightDist::Constant(w) => *w,
            WeightDist::CorrelatedWithKey => src as f64 / num_nodes.max(1) as f64,
            WeightDist::InverseKey => (num_nodes - src) as f64 / num_nodes.max(1) as f64,
        }
    }
}

/// A simple Zipf sampler over `0..n` with exponent `s` (precomputed
/// CDF + binary search; exact, no rejection).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build for `n` values with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }
}

impl Distribution<u64> for Zipf {
    fn sample<Rn: Rng + ?Sized>(&self, rng: &mut Rn) -> u64 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Generate a random edge relation with `num_edges` edges over node ids
/// `0..num_nodes`, schema `(src, dst)`. `zipf_skew = None` draws both
/// endpoints uniformly; `Some(s)` draws them Zipf(s)-skewed (hub-heavy
/// graphs — the degree skew that separates heavy/light algorithms).
pub fn random_edge_relation(
    num_edges: usize,
    num_nodes: u64,
    weight: WeightDist,
    zipf_skew: Option<f64>,
    seed: u64,
) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = zipf_skew.map(|s| Zipf::new(num_nodes as usize, s));
    let schema = Schema::new(["src", "dst"]);
    let mut b = RelationBuilder::with_capacity(schema, num_edges);
    for _ in 0..num_edges {
        let (u, v) = match &zipf {
            Some(z) => (z.sample(&mut rng), z.sample(&mut rng)),
            None => (rng.gen_range(0..num_nodes), rng.gen_range(0..num_nodes)),
        };
        let w = weight.sample(&mut rng, u, num_nodes);
        b.push_ints(&[u as i64, v as i64], w);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = random_edge_relation(100, 50, WeightDist::Uniform, None, 42);
        let b = random_edge_relation(100, 50, WeightDist::Uniform, None, 42);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() as u32 {
            assert_eq!(a.row(i), b.row(i));
            assert_eq!(a.weight(i), b.weight(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_edge_relation(100, 50, WeightDist::Uniform, None, 1);
        let b = random_edge_relation(100, 50, WeightDist::Uniform, None, 2);
        let same = (0..a.len() as u32).all(|i| a.row(i) == b.row(i));
        assert!(!same);
    }

    #[test]
    fn nodes_in_range() {
        let r = random_edge_relation(500, 10, WeightDist::Uniform, Some(1.2), 7);
        for i in 0..r.len() as u32 {
            let row = r.row(i);
            assert!((0..10).contains(&row[0].int()));
            assert!((0..10).contains(&row[1].int()));
        }
    }

    #[test]
    fn zipf_skews_towards_small_ids() {
        let z = Zipf::new(1000, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut small = 0;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                small += 1;
            }
        }
        // With s=1.5 the first 10 values carry most of the mass.
        assert!(small > n / 2, "only {small} of {n} samples in the head");
    }

    #[test]
    fn constant_weights() {
        let r = random_edge_relation(10, 5, WeightDist::Constant(2.5), None, 9);
        for i in 0..r.len() as u32 {
            assert_eq!(r.weight(i).get(), 2.5);
        }
    }

    #[test]
    fn correlated_weights_monotone_in_src() {
        let r = random_edge_relation(200, 100, WeightDist::CorrelatedWithKey, None, 11);
        for i in 0..r.len() as u32 {
            let src = r.row(i)[0].int() as f64;
            assert!((r.weight(i).get() - src / 100.0).abs() < 1e-12);
        }
    }
}
