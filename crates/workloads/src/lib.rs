//! # anyk-workloads
//!
//! Seeded, reproducible synthetic workloads for every experiment in
//! EXPERIMENTS.md. The paper is a tutorial and evaluates on synthetic
//! graph-pattern workloads (plus the adversarial instances its
//! complexity arguments are built on); this crate generates:
//!
//! * [`graphs`] — random weighted edge relations (uniform or Zipf-skewed
//!   endpoints, several weight distributions).
//! * [`patterns`] — ready-to-run instances of path / star / cycle
//!   queries over those relations.
//! * [`adversarial`] — the §3 worst-case triangle instance, the
//!   anti-correlated rank-join inputs, and bottom-heavy paths where
//!   sorted-access top-k algorithms degrade.
//! * [`middleware`] — ranked-list instances for FA / TA / NRA.
//! * [`dag`] — layered DAGs for the k-shortest-path adapter.
//!
//! Everything takes an explicit `seed`; identical seeds produce
//! identical workloads on every platform (we use `StdRng`, which is
//! seedable and portable).

pub mod adversarial;
pub mod dag;
pub mod graphs;
pub mod middleware;
pub mod patterns;

pub use adversarial::{anticorrelated_pair, bottom_heavy_path, worst_case_triangle};
pub use graphs::{random_edge_relation, WeightDist};
pub use patterns::{cycle_instance, path_instance, star_instance, AcyclicInstance};
