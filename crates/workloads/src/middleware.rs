//! Ranked-list instances for the middleware top-k algorithms (FA / TA /
//! NRA). Score correlation across lists is the workload knob that
//! separates them: correlated lists let every algorithm stop early;
//! independent lists are the average case; anti-correlated lists are
//! where threshold-style pruning degrades toward full scans.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-list `(object, score)` assignments, scores in `[0, 1]`.
pub type ListScores = Vec<Vec<(u64, f64)>>;

/// `m` lists of `n` objects with i.i.d. uniform scores.
pub fn uniform_lists(m: usize, n: usize, seed: u64) -> ListScores {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| (0..n as u64).map(|o| (o, rng.gen::<f64>())).collect())
        .collect()
}

/// Correlated lists: every list's score is one shared base score per
/// object plus small independent noise — the "friendly" case where the
/// global winners sit near the top of every list.
pub fn correlated_lists(m: usize, n: usize, noise: f64, seed: u64) -> ListScores {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    (0..m)
        .map(|_| {
            (0..n as u64)
                .map(|o| {
                    let s = (base[o as usize] + rng.gen::<f64>() * noise).clamp(0.0, 1.0);
                    (o, s)
                })
                .collect()
        })
        .collect()
}

/// Anti-correlated pair-wise: object `o`'s score in list `l` is high
/// exactly when it is low in the others (rotating ranks). With sum
/// aggregation all objects tie near m/2 — threshold algorithms cannot
/// prune and must scan deep.
pub fn anticorrelated_lists(m: usize, n: usize, seed: u64) -> ListScores {
    let mut rng = StdRng::seed_from_u64(seed);
    // Random global permutation; list l ranks objects by a rotation.
    let mut perm: Vec<u64> = (0..n as u64).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    (0..m)
        .map(|l| {
            (0..n)
                .map(|idx| {
                    let o = perm[idx];
                    // Rotate rank by l * n/m so each list favors a
                    // different slice of objects.
                    let rank = (idx + l * n / m.max(1)) % n;
                    (o, 1.0 - rank as f64 / n as f64)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        for lists in [
            uniform_lists(3, 50, 1),
            correlated_lists(3, 50, 0.1, 2),
            anticorrelated_lists(3, 50, 3),
        ] {
            assert_eq!(lists.len(), 3);
            for l in &lists {
                assert_eq!(l.len(), 50);
                for &(_, s) in l {
                    assert!((0.0..=1.0).contains(&s));
                }
            }
        }
    }

    #[test]
    fn correlated_lists_share_winners() {
        let lists = correlated_lists(3, 100, 0.01, 7);
        // Top object of each list should coincide (tiny noise).
        let tops: Vec<u64> = lists
            .iter()
            .map(|l| {
                l.iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap()
                    .0
            })
            .collect();
        assert!(tops.windows(2).all(|w| w[0] == w[1]), "{tops:?}");
    }

    #[test]
    fn anticorrelated_sums_are_flat() {
        let lists = anticorrelated_lists(2, 100, 5);
        let mut sums: Vec<f64> = (0..100u64)
            .map(|o| {
                lists
                    .iter()
                    .map(|l| l.iter().find(|&&(x, _)| x == o).unwrap().1)
                    .sum()
            })
            .collect();
        sums.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let spread = sums.last().unwrap() - sums.first().unwrap();
        assert!(
            spread <= 1.01,
            "sums should be nearly flat, spread {spread}"
        );
    }
}
