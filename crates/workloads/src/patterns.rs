//! Ready-to-run query instances: path, star and cycle patterns over
//! random weighted relations (the workload family of the companion
//! paper's experiments and the tutorial's running examples).

use crate::graphs::{random_edge_relation, WeightDist};
use anyk_query::cq::{cycle_query, path_query, star_query, ConjunctiveQuery};
use anyk_query::gyo::{gyo_reduce, GyoResult};
use anyk_query::join_tree::JoinTree;
use anyk_storage::Relation;

/// A packaged acyclic-query instance: query + join tree + relations.
#[derive(Debug)]
pub struct AcyclicInstance {
    /// The conjunctive query.
    pub query: ConjunctiveQuery,
    /// A valid join tree (from GYO).
    pub join_tree: JoinTree,
    /// One relation per atom.
    pub relations: Vec<Relation>,
}

impl AcyclicInstance {
    /// Clone the relations (instances are often consumed by `prepare`).
    pub fn relations_clone(&self) -> Vec<Relation> {
        self.relations.clone()
    }

    /// Total input size (sum of relation cardinalities).
    pub fn input_size(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }
}

fn tree_of(q: &ConjunctiveQuery) -> JoinTree {
    match gyo_reduce(q) {
        GyoResult::Acyclic(t) => t,
        GyoResult::Cyclic(_) => panic!("pattern must be acyclic"),
    }
}

/// A path query of `len` relations, each with `edges_per_rel` random
/// edges over `num_nodes` nodes. Small `num_nodes` relative to
/// `edges_per_rel` gives dense joins (many answers); large gives sparse.
pub fn path_instance(
    len: usize,
    edges_per_rel: usize,
    num_nodes: u64,
    weight: WeightDist,
    seed: u64,
) -> AcyclicInstance {
    let query = path_query(len);
    let join_tree = tree_of(&query);
    let relations = (0..len)
        .map(|i| {
            random_edge_relation(
                edges_per_rel,
                num_nodes,
                weight,
                None,
                seed.wrapping_add(i as u64 * 0x9e37),
            )
        })
        .collect();
    AcyclicInstance {
        query,
        join_tree,
        relations,
    }
}

/// A star query with `arms` relations sharing the center variable.
pub fn star_instance(
    arms: usize,
    edges_per_rel: usize,
    num_nodes: u64,
    weight: WeightDist,
    seed: u64,
) -> AcyclicInstance {
    let query = star_query(arms);
    let join_tree = tree_of(&query);
    let relations = (0..arms)
        .map(|i| {
            random_edge_relation(
                edges_per_rel,
                num_nodes,
                weight,
                None,
                seed.wrapping_add(i as u64 * 0x517c),
            )
        })
        .collect();
    AcyclicInstance {
        query,
        join_tree,
        relations,
    }
}

/// A cycle-query instance (cyclic — no join tree): the query plus `len`
/// relations. Self-join flavored: all atoms share one generated edge
/// set, like the graph-pattern queries of §1 ("top-k lightest
/// 4-cycles" over one weighted graph).
pub fn cycle_instance(
    len: usize,
    num_edges: usize,
    num_nodes: u64,
    weight: WeightDist,
    zipf_skew: Option<f64>,
    seed: u64,
) -> (ConjunctiveQuery, Vec<Relation>) {
    let query = cycle_query(len);
    let edges = random_edge_relation(num_edges, num_nodes, weight, zipf_skew, seed);
    let relations = vec![edges; len];
    (query, relations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_join::yannakakis::yannakakis_count;

    #[test]
    fn path_instance_joins() {
        // Dense: 200 edges over 20 nodes — plenty of 3-paths.
        let inst = path_instance(3, 200, 20, WeightDist::Uniform, 42);
        assert_eq!(inst.relations.len(), 3);
        assert_eq!(inst.input_size(), 600);
        let count = yannakakis_count(&inst.query, &inst.join_tree, inst.relations_clone());
        assert!(count > 0, "dense path instance should have answers");
    }

    #[test]
    fn star_instance_shape() {
        let inst = star_instance(3, 100, 10, WeightDist::Uniform, 7);
        assert_eq!(inst.query.num_vars(), 4);
        assert!(inst.join_tree.satisfies_running_intersection(&inst.query));
    }

    #[test]
    fn cycle_instance_self_join() {
        let (q, rels) = cycle_instance(4, 50, 10, WeightDist::Uniform, None, 3);
        assert_eq!(q.num_atoms(), 4);
        assert_eq!(rels.len(), 4);
        // Self-join: all four relations identical.
        for i in 0..rels[0].len() as u32 {
            assert_eq!(rels[0].row(i), rels[3].row(i));
        }
    }

    #[test]
    fn deterministic() {
        let a = path_instance(2, 50, 10, WeightDist::Uniform, 5);
        let b = path_instance(2, 50, 10, WeightDist::Uniform, 5);
        for (ra, rb) in a.relations.iter().zip(&b.relations) {
            for i in 0..ra.len() as u32 {
                assert_eq!(ra.row(i), rb.row(i));
            }
        }
    }
}
