//! Serving over the wire: `anyk-serve`'s textual protocol end-to-end.
//!
//! Builds a small weighted-graph catalog, starts the query service,
//! and drives it two ways — in-process (`LocalClient`) and over a real
//! TCP socket (`Server` + `TcpClient`) — printing the raw protocol
//! transcript. Both transports produce byte-identical replies.
//!
//! Run: `cargo run --example anyk_serve`

use anyk::prelude::*;
use anyk::serve::{Server, TcpClient};

fn main() {
    // A toy road network: edges with travel costs.
    let mut catalog = Catalog::new();
    let mut roads = RelationBuilder::new(Schema::new(["src", "dst"]));
    for (u, v, w) in [
        (1, 2, 0.5),
        (2, 3, 1.0),
        (3, 1, 0.25),
        (1, 3, 0.125),
        (3, 4, 0.75),
        (4, 1, 0.375),
        (2, 4, 1.5),
        (4, 2, 0.0625),
    ] {
        roads.push_ints(&[u, v], w);
    }
    catalog.register("Road", roads.finish());

    let service = Service::new(Engine::new(catalog));
    let mut client = LocalClient::new(&service);

    // A scripted session: 2-hop routes, paged; a triangle query; plan
    // inspection; metrics. `>` lines are what a client sends.
    let script = [
        "SELECT Road(a,b), Road(b,c) RANK BY sum LIMIT 3;",
        "NEXT 3 ON 0;",
        "CLOSE 0;",
        "SELECT Road(x,y), Road(y,z), Road(z,x) RANK BY max LIMIT 3;",
        "EXPLAIN SELECT Road(x,y), Road(y,z), Road(z,x) RANK BY max;",
        "SELECT Road(a,a) RANK BY lex;",
        "SELECT Missing(a,b);",
        "STATS;",
    ];
    println!("== in-process (LocalClient) ==");
    for cmd in script {
        println!("> {cmd}");
        print!("{}", client.send(cmd));
    }

    // The same service over TCP: one thread + session per connection;
    // the bytes match the in-process transport exactly.
    println!("\n== over TCP ==");
    let server = Server::bind(service.clone(), "127.0.0.1:0").expect("bind");
    println!("listening on {}", server.addr());
    let mut tcp = TcpClient::connect(server.addr()).expect("connect");
    for cmd in [
        "SELECT Road(a,b), Road(b,c) RANK BY sum LIMIT 3;",
        "NEXT 2 ON 0;",
        "CLOSE 0;",
    ] {
        println!("> {cmd}");
        print!("{}", tcp.send(cmd).expect("round-trip"));
    }
    drop(server);
    println!("\n(server stopped; {} answers served in total)", {
        service.stats().answers_served
    });
}
