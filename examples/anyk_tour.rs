//! A tour of every ranked-enumeration engine on one workload: the five
//! ANYK-PART successor orders, ANYK-REC, and the batch baselines — all
//! producing the same ranked stream, with different cost profiles
//! (Part 3's "empirical comparison of the most promising approaches").
//!
//! Run with: `cargo run --release --example anyk_tour`

use anyk::core::{AnyKPart, AnyKRec, BatchHeap, BatchSorted, SuccessorKind, SumCost, TdpInstance};
use anyk::workloads::graphs::WeightDist;
use anyk::workloads::patterns::path_instance;
use std::time::Instant;

fn main() {
    // A 4-path query over random weighted relations.
    let inst = path_instance(4, 10_000, 1_000, WeightDist::Uniform, 7);
    println!(
        "workload: {} — {} input tuples total\n",
        inst.query,
        inst.input_size()
    );

    let k = 1000;
    let mut reference: Option<Vec<f64>> = None;

    // The five Lawler–Murty variants.
    for kind in SuccessorKind::ALL_KINDS {
        let t0 = Instant::now();
        let tdp =
            TdpInstance::<SumCost>::prepare(&inst.query, &inst.join_tree, inst.relations_clone())
                .unwrap();
        let prep = t0.elapsed();
        let mut anyk = AnyKPart::new(tdp, kind);
        let t0 = Instant::now();
        let costs: Vec<f64> = anyk.by_ref().take(k).map(|a| a.cost.get()).collect();
        let run = t0.elapsed();
        check(&mut reference, &costs, kind.name());
        println!(
            "ANYK-PART/{:<5}  prep {prep:>9.2?}  TT({k}) {run:>9.2?}  peak queue {}",
            kind.name(),
            anyk.peak_pending()
        );
    }

    // Recursive enumeration with memoized shared suffixes.
    {
        let t0 = Instant::now();
        let tdp =
            TdpInstance::<SumCost>::prepare(&inst.query, &inst.join_tree, inst.relations_clone())
                .unwrap();
        let prep = t0.elapsed();
        let mut anyk = AnyKRec::new(tdp);
        let t0 = Instant::now();
        let costs: Vec<f64> = anyk.by_ref().take(k).map(|a| a.cost.get()).collect();
        let run = t0.elapsed();
        check(&mut reference, &costs, "Rec");
        println!("ANYK-REC         prep {prep:>9.2?}  TT({k}) {run:>9.2?}");
    }

    // Batch baselines: the full join happens before answer one.
    {
        let t0 = Instant::now();
        let mut batch =
            BatchSorted::<SumCost>::new(&inst.query, &inst.join_tree, inst.relations_clone());
        let prep = t0.elapsed();
        let t0 = Instant::now();
        let costs: Vec<f64> = batch.by_ref().take(k).map(|a| a.cost.get()).collect();
        let run = t0.elapsed();
        check(&mut reference, &costs, "BatchSorted");
        println!("Batch-sort       prep {prep:>9.2?}  TT({k}) {run:>9.2?}   <- joins + sorts everything first");
    }
    {
        let t0 = Instant::now();
        let mut batch =
            BatchHeap::<SumCost>::new(&inst.query, &inst.join_tree, inst.relations_clone());
        let prep = t0.elapsed();
        let t0 = Instant::now();
        let costs: Vec<f64> = batch.by_ref().take(k).map(|a| a.cost.get()).collect();
        let run = t0.elapsed();
        check(&mut reference, &costs, "BatchHeap");
        println!("Batch-heap       prep {prep:>9.2?}  TT({k}) {run:>9.2?}");
    }

    println!("\nall engines produced identical top-{k} cost sequences ✓");
}

/// All engines must agree on the ranked cost sequence.
fn check(reference: &mut Option<Vec<f64>>, costs: &[f64], who: &str) {
    match reference {
        None => *reference = Some(costs.to_vec()),
        Some(r) => {
            assert_eq!(r.len(), costs.len(), "{who}: length mismatch");
            for (i, (a, b)) in r.iter().zip(costs).enumerate() {
                assert!((a - b).abs() < 1e-9, "{who}: rank {i}: {a} vs {b}");
            }
        }
    }
}
