//! General cyclic queries through tree decompositions: the full §3
//! pipeline on a 6-cycle — a query the specialized 4-cycle plan cannot
//! touch, but the decomposition engine handles automatically.
//!
//! Shows: width analysis (ρ*, fhw, subw), GHD materialization, and
//! ranked enumeration over the bag tree; plus the E13 moral on the
//! 4-cycle (union of trees vs single tree).
//!
//! Run with: `cargo run --release --example cyclic_decompositions`

use anyk::core::cyclic::c4_ranked_part;
use anyk::core::decomposed::{decomposed_ranked_part, ranked_auto};
use anyk::core::{SuccessorKind, SumCost};
use anyk::engine::{Engine, RankSpec};
use anyk::query::agm::fractional_edge_cover;
use anyk::query::cq::cycle_query;
use anyk::query::cycles::{cycle_submodular_width, heavy_threshold};
use anyk::query::decompose::fhw_exact;
use anyk::query::hypergraph::{iter_vars, Hypergraph};
use anyk::workloads::graphs::{random_edge_relation, WeightDist};
use std::time::Instant;

fn main() {
    // --- A 6-cycle pattern over a random weighted graph. ---
    let q = cycle_query(6);
    let h = Hypergraph::of_query(&q);
    println!("query: {q}");
    let rho = fractional_edge_cover(&h, h.all_vars()).unwrap().value;
    let decomp = fhw_exact(&h);
    println!(
        "widths: rho* = {rho} (AGM exponent), fhw = {} (single tree), subw = {:.3} (union of trees)",
        decomp.width,
        cycle_submodular_width(6)
    );
    println!("chosen decomposition bags:");
    for (i, bag) in decomp.bags.iter().enumerate() {
        let vars: Vec<String> = iter_vars(bag.vars)
            .map(|v| q.var_name(v).to_string())
            .collect();
        println!(
            "  bag {i}: {{{}}} cover={:?} cost={:.2} parent={:?}",
            vars.join(","),
            bag.cover,
            bag.cost,
            bag.parent
        );
    }

    // Dedup: decomposition-based execution uses set semantics, so keep
    // the inputs duplicate-free (Zipf graphs repeat hub pairs).
    let mut edges = random_edge_relation(3000, 250, WeightDist::Uniform, Some(1.05), 7);
    edges.dedup();
    let rels = vec![edges; 6];
    let k = 5;
    let t0 = Instant::now();
    let top: Vec<_> = decomposed_ranked_part::<SumCost>(&q, &rels, &decomp, SuccessorKind::Lazy)
        .take(k)
        .collect();
    println!(
        "\ntop-{k} lightest 6-cycles via the fhw-2 decomposition ({:?}):",
        t0.elapsed()
    );
    for (i, a) in top.iter().enumerate() {
        let cyc: Vec<String> = a.values.iter().map(|v| v.to_string()).collect();
        println!(
            "  #{} weight {:.4}  {}",
            i + 1,
            a.cost.get(),
            cyc.join(" -> ")
        );
    }

    // `ranked_auto` picks the decomposition for you.
    let t0 = Instant::now();
    let same: Vec<_> = ranked_auto::<SumCost>(&q, &rels).take(k).collect();
    assert_eq!(top.len(), same.len());
    for (a, b) in top.iter().zip(&same) {
        assert!((a.cost.get() - b.cost.get()).abs() < 1e-9);
    }
    println!("ranked_auto agrees ({:?})", t0.elapsed());

    // And the unified Engine routes here automatically: a 6-cycle is
    // neither acyclic nor a specialized cycle, so the planner picks
    // the decomposition route on its own.
    let engine = Engine::from_query_bindings(&q, rels.clone());
    let t0 = Instant::now();
    let via_engine = engine
        .query(q.clone())
        .rank_by(RankSpec::Sum)
        .plan()
        .expect("plannable")
        .take(k)
        .collect::<Vec<_>>();
    assert_eq!(top.len(), via_engine.len());
    for (a, b) in top.iter().zip(&via_engine) {
        assert!((a.cost.get() - b.cost.scalar().unwrap()).abs() < 1e-9);
    }
    println!("Engine (route = decomposed) agrees ({:?})", t0.elapsed());

    // --- The E13 moral on the 4-cycle. ---
    let q4 = cycle_query(4);
    let h4 = Hypergraph::of_query(&q4);
    let d4 = fhw_exact(&h4);
    let mut e4 = random_edge_relation(4000, 320, WeightDist::Uniform, Some(1.05), 11);
    e4.dedup();
    let rels4 = vec![e4; 4];
    let thr = heavy_threshold(4000);

    let t0 = Instant::now();
    let a: Vec<f64> = c4_ranked_part::<SumCost>(&rels4, thr, SuccessorKind::Lazy)
        .take(100)
        .map(|x| x.cost.get())
        .collect();
    let t_subw = t0.elapsed();
    let t0 = Instant::now();
    let b: Vec<f64> = decomposed_ranked_part::<SumCost>(&q4, &rels4, &d4, SuccessorKind::Lazy)
        .take(100)
        .map(|x| x.cost.get())
        .collect();
    let t_fhw = t0.elapsed();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-9);
    }
    println!(
        "\n4-cycle top-100: union-of-trees (subw 1.5) {t_subw:?} vs single tree (fhw 2) {t_fhw:?} \
         — identical answers, {}x faster",
        (t_fhw.as_secs_f64() / t_subw.as_secs_f64()).round()
    );
}
