//! The paper's §1 motivating problem: **top-k lightest 4-cycles** in a
//! weighted graph, expressed as a self-join of the edge relation.
//!
//! Demonstrates the full cyclic pipeline: the submodular-width
//! union-of-trees plan (heavy/light case split), per-case T-DP, and the
//! global ranked merge — TT(k) close to the Boolean query for small k,
//! far below the full worst-case-optimal join.
//!
//! Run with: `cargo run --release --example lightest_cycles`

use anyk::join::boolean::c4_exists;
use anyk::join::generic_join::generic_join_materialize;
use anyk::prelude::*;
use anyk::query::cycles::heavy_threshold;
use anyk::workloads::graphs::random_edge_relation;
use std::time::Instant;

fn main() {
    // A weighted directed graph with a Zipf-skewed degree distribution
    // (hubs!) — the regime where the heavy/light split matters.
    let num_edges = 20_000;
    let num_nodes = 2_000;
    let edges = random_edge_relation(num_edges, num_nodes, WeightDist::Uniform, Some(1.1), 42);
    println!("graph: {num_edges} weighted edges over {num_nodes} nodes (Zipf-skewed, seed 42)");

    // The 4-cycle pattern is a self-join: all four atoms read the same
    // edge relation.
    let q = cycle_query(4);
    let rels = vec![edges.clone(), edges.clone(), edges.clone(), edges];
    let threshold = heavy_threshold(num_edges);
    println!("heavy-degree threshold Δ = {threshold}");

    // Boolean floor: "is there any 4-cycle?" — O~(n^1.5).
    let t0 = Instant::now();
    let any = c4_exists(&rels, threshold);
    let t_bool = t0.elapsed();
    println!("boolean 4-cycle detection: {any} in {t_bool:?}");

    // Ranked enumeration through the unified Engine: the planner
    // recognizes the 4-cycle and picks the submodular-width
    // union-of-trees plan on its own.
    let engine = Engine::from_query_bindings(&q, rels.clone());
    let plan = engine.query(q.clone()).explain().expect("plannable");
    println!(
        "planner route: {} (width {:.2})",
        plan.route.label(),
        plan.width
    );

    // k lightest 4-cycles, no k fixed in advance.
    let k = 10;
    let t0 = Instant::now();
    let mut stream = engine
        .query(q.clone())
        .rank_by(RankSpec::Sum)
        .plan()
        .expect("plannable");
    let top = stream.top_k(k);
    let t_topk = t0.elapsed();
    println!("\ntop-{k} lightest 4-cycles (TT({k}) = {t_topk:?}):");
    for (i, a) in top.iter().enumerate() {
        let cyc: Vec<String> = a.values.iter().map(|v| v.to_string()).collect();
        println!(
            "  #{:<2} weight {}  cycle {}",
            i + 1,
            a.cost,
            cyc.join(" -> ")
        );
    }

    // Ceiling: the full worst-case-optimal join (then you'd still sort).
    let t0 = Instant::now();
    let (all, _) = generic_join_materialize(&q, &rels, None);
    let t_full = t0.elapsed();
    println!(
        "\nfull WCO join: {} 4-cycles in {t_full:?} — ranked enumeration \
         returned the top {k} {}x faster",
        all.len(),
        (t_full.as_secs_f64() / t_topk.as_secs_f64()).round()
    );
}
