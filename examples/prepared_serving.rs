//! Prepared serving: route + preprocess a query **once**, then serve
//! many ranked streams — including from multiple threads — without
//! ever repeating the preprocessing.
//!
//! This is the paper's TTF-vs-TT(k) decomposition as an API: the
//! `O~(n)` phase (full reducer, T-DP) lives in a `PreparedQuery`; each
//! `stream()` afterwards pays only the per-answer delay side. The
//! engine is `Clone + Send + Sync`, relations are `Arc`-backed handles,
//! and catalog updates bump an epoch so cached plans never go stale.
//!
//! Run with: `cargo run --example prepared_serving`

use anyk::prelude::*;
use std::thread;
use std::time::Instant;

fn main() -> Result<(), EngineError> {
    // --- 1. A mid-sized acyclic workload: a 3-path over random edges. -
    let inst = path_instance(3, 50_000, 5_000, WeightDist::Uniform, 7);
    let query = inst.query.clone();
    let engine = Engine::from_query_bindings(&query, inst.relations_clone());

    // --- 2. Prepare once: the engine routes and preprocesses here. ---
    let t0 = Instant::now();
    let prepared = engine.prepare(query.clone(), RankSpec::Sum)?;
    println!(
        "prepared `{query}` in {:?} (route = {})",
        t0.elapsed(),
        prepared.plan().route.label()
    );

    // --- 3. Stream many times: each stream is independent and cheap. -
    let t1 = Instant::now();
    let top3: Vec<Vec<i64>> = prepared
        .stream()
        .top_k(3)
        .iter()
        .map(|a| a.ints())
        .collect();
    println!("top-3 (fresh stream in {:?}): {top3:?}", t1.elapsed());

    // --- 4. Serve concurrently: clone handles into worker threads. ---
    // Clones share the prepared state; every thread sees the identical
    // ranked stream.
    let t2 = Instant::now();
    let counts: Vec<usize> = thread::scope(|s| {
        (0..4)
            .map(|_| {
                let p = prepared.clone();
                s.spawn(move || p.stream().top_k(1_000).len())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    println!(
        "4 threads × top-1000 from the shared prepared query in {:?}: {counts:?}",
        t2.elapsed()
    );

    // --- 5. Ad-hoc callers amortize automatically via the plan cache. -
    let t3 = Instant::now();
    let first = engine
        .query(query.clone())
        .rank_by(RankSpec::Sum)
        .plan()?
        .next();
    println!(
        "ad-hoc plan() after prepare hits the cache: first answer in {:?} ({:?})",
        t3.elapsed(),
        first.map(|a| a.ints())
    );

    // --- 6. Catalog updates bump the epoch; prepared state is a
    //        snapshot, new plans see new data. ---
    let epoch_before = engine.catalog_epoch();
    engine.register("R1", Relation::empty(Schema::new(["a", "b"])));
    println!(
        "epoch {} -> {} after update; cached plans: {}",
        epoch_before,
        engine.catalog_epoch(),
        engine.cached_plans()
    );
    assert!(
        prepared.stream().next().is_some(),
        "the prepared snapshot still serves the old data"
    );
    assert!(
        engine.query(query).plan()?.next().is_none(),
        "new plans see the emptied relation"
    );
    println!("prepared snapshot unaffected; fresh plans see the update");
    Ok(())
}
