//! Quickstart: ranked enumeration through the unified `Engine`.
//!
//! Registers two weighted relations in a catalog, forms the path query
//! `R(a,b) ⋈ S(b,c)`, and enumerates the join answers cheapest-first —
//! without fixing `k` in advance (the "anytime top-k" contract) and
//! without choosing an algorithm: the planner routes by query shape.
//!
//! Run with: `cargo run --example quickstart`

use anyk::prelude::*;

fn main() -> Result<(), EngineError> {
    // --- 1. Data: two weighted edge relations, named in a catalog. ---
    // Think of weights as costs: lower is better.
    let mut catalog = Catalog::new();

    let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
    r.push_ints(&[1, 10], 0.3); // a=1 -- b=10, weight 0.3
    r.push_ints(&[1, 20], 1.0);
    r.push_ints(&[2, 10], 0.1);
    r.push_ints(&[3, 30], 0.2); // dangling: no S-partner for b=30
    catalog.register("R", r.finish());

    let mut s = RelationBuilder::new(Schema::new(["b", "c"]));
    s.push_ints(&[10, 100], 0.5);
    s.push_ints(&[10, 200], 0.05);
    s.push_ints(&[20, 300], 0.4);
    catalog.register("S", s.finish());

    // --- 2. Query: the natural join R(a,b) ⋈ S(b,c). ---
    let engine = Engine::new(catalog);
    let query = QueryBuilder::new()
        .atom("R", &["a", "b"])
        .atom("S", &["b", "c"])
        .build();
    println!("query: {query}");

    // --- 3. Plan: the engine routes by query shape. ---
    // This query is acyclic, so the plan is GYO + T-DP + any-k; a
    // triangle would get the worst-case-optimal plan, and so on.
    let plan = engine.query(query.clone()).explain()?;
    print!("{}", plan.explain());

    // --- 4. Enumerate: answers arrive cheapest-first. ---
    // The ranking function is a *runtime* value; swap RankSpec::Sum
    // for Max/Min/Prod/Lex without recompiling.
    let stream = engine.query(query).rank_by(RankSpec::Sum).plan()?;
    println!("answers (cost ascending):");
    for (rank, answer) in stream.enumerate() {
        let vals: Vec<String> = answer.values.iter().map(|v| v.to_string()).collect();
        println!(
            "  #{}  (a,b,c) = ({})   cost = {}",
            rank + 1,
            vals.join(", "),
            answer.cost
        );
    }
    // Expected order:
    //   (2,10,200) = 0.1 + 0.05 = 0.15
    //   (1,10,200) = 0.3 + 0.05 = 0.35
    //   (2,10,100) = 0.1 + 0.5  = 0.6
    //   (1,10,100) = 0.3 + 0.5  = 0.8
    //   (1,20,300) = 1.0 + 0.4  = 1.4
    // The dangling tuple (3,30) never shows up: the full reducer
    // removed it before enumeration started.
    Ok(())
}
