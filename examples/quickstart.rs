//! Quickstart: ranked enumeration over a small acyclic join.
//!
//! Builds two weighted relations, forms the path query
//! `R(a,b) ⋈ S(b,c)`, and enumerates the join answers cheapest-first —
//! without fixing `k` in advance (the "anytime top-k" contract).
//!
//! Run with: `cargo run --example quickstart`

use anyk::core::{AnyKPart, SuccessorKind, SumCost, TdpInstance};
use anyk::query::cq::QueryBuilder;
use anyk::query::gyo::{gyo_reduce, GyoResult};
use anyk::storage::{RelationBuilder, Schema};

fn main() {
    // --- 1. Data: two weighted edge relations. ---
    // Think of weights as costs: lower is better.
    let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
    r.push_ints(&[1, 10], 0.3); // a=1 -- b=10, weight 0.3
    r.push_ints(&[1, 20], 1.0);
    r.push_ints(&[2, 10], 0.1);
    r.push_ints(&[3, 30], 0.2); // dangling: no S-partner for b=30
    let r = r.finish();

    let mut s = RelationBuilder::new(Schema::new(["b", "c"]));
    s.push_ints(&[10, 100], 0.5);
    s.push_ints(&[10, 200], 0.05);
    s.push_ints(&[20, 300], 0.4);
    let s = s.finish();

    // --- 2. Query: the natural join R(a,b) ⋈ S(b,c). ---
    let query = QueryBuilder::new()
        .atom("R", &["a", "b"])
        .atom("S", &["b", "c"])
        .build();
    println!("query: {query}");

    // GYO reduction proves acyclicity and hands us a join tree.
    let tree = match gyo_reduce(&query) {
        GyoResult::Acyclic(t) => t,
        GyoResult::Cyclic(_) => unreachable!("a path query is acyclic"),
    };

    // --- 3. Preprocess: full reducer + dynamic programming (T-DP). ---
    let tdp = TdpInstance::<SumCost>::prepare(&query, &tree, vec![r, s])
        .expect("tree matches query");

    // --- 4. Enumerate: answers arrive cheapest-first. ---
    println!("answers (cost ascending):");
    let anyk = AnyKPart::new(tdp, SuccessorKind::Lazy);
    for (rank, answer) in anyk.enumerate() {
        let vals: Vec<String> = answer.values.iter().map(|v| v.to_string()).collect();
        println!(
            "  #{}  (a,b,c) = ({})   cost = {}",
            rank + 1,
            vals.join(", "),
            answer.cost
        );
    }
    // Expected order:
    //   (2,10,200) = 0.1 + 0.05 = 0.15
    //   (1,10,200) = 0.3 + 0.05 = 0.35
    //   (2,10,100) = 0.1 + 0.5  = 0.6
    //   (1,10,100) = 0.3 + 0.5  = 0.8
    //   (1,20,300) = 1.0 + 0.4  = 1.4
    // The dangling tuple (3,30) never shows up: the full reducer
    // removed it before enumeration started.
}
