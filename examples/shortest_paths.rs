//! k-shortest paths as ranked join enumeration — the historical root
//! Part 3 traces any-k back to (Hoffman–Pavley 1959, Dreyfus, Eppstein,
//! Jiménez–Marzal).
//!
//! A layered DAG *is* a path query: layer-i edges form relation
//! `R_i(x_{i-1}, x_i)` and the k shortest source-to-sink paths are
//! exactly the k top-ranked join answers under sum ranking.
//!
//! Run with: `cargo run --release --example shortest_paths`

use anyk::core::ksp::{k_shortest_paths, LayeredDag};
use anyk::workloads::dag::layered_dag_edges;
use std::time::Instant;

fn main() {
    // A random layered DAG: 6 transitions, 50 nodes per layer.
    let layers = 6;
    let width = 50;
    let edges_per_layer = 600;
    let dag = LayeredDag {
        edges: layered_dag_edges(layers, width, edges_per_layer, 2024),
    };
    println!("layered DAG: {layers} transitions x {edges_per_layer} edges, {width} nodes/layer");

    let k = 10;
    let t0 = Instant::now();
    let paths = k_shortest_paths(&dag, k);
    let elapsed = t0.elapsed();

    println!(
        "\n{k} shortest paths (found {} in {elapsed:?}):",
        paths.len()
    );
    for (i, (w, nodes)) in paths.iter().enumerate() {
        let hops: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
        println!(
            "  #{:<2} length {:.4}  path {}",
            i + 1,
            w,
            hops.join(" -> ")
        );
    }

    // Sanity: lengths are non-decreasing — the any-k guarantee.
    assert!(paths.windows(2).all(|w| w[0].0 <= w[1].0));
    println!("\npath lengths non-decreasing ✓ (any-k order guarantee)");
    println!(
        "note: this runs the same ANYK-PART machinery as the join examples —\n\
         k-shortest paths and ranked join enumeration are the same problem."
    );
}
