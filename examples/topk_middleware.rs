//! Part 1 of the paper in action: the classic middleware top-k
//! algorithms (Fagin's Algorithm, the Threshold Algorithm, NRA) over
//! vertically partitioned ranked lists — and how their access costs
//! react to score correlation.
//!
//! Run with: `cargo run --release --example topk_middleware`

use anyk::topk::{fagin_topk, nra_topk, threshold_topk, Aggregation, RankedLists};
use anyk::workloads::middleware::{anticorrelated_lists, correlated_lists, uniform_lists};

fn main() {
    let m = 3; // lists ("vertical partitions" / external sources)
    let n = 10_000; // objects
    let k = 5;
    println!("m = {m} ranked lists, n = {n} objects, top-{k}, sum aggregation\n");

    for (name, lists) in [
        ("correlated  ", correlated_lists(m, n, 0.05, 1)),
        ("independent ", uniform_lists(m, n, 2)),
        ("anticorrel. ", anticorrelated_lists(m, n, 3)),
    ] {
        // Threshold Algorithm — instance-optimal in this model.
        let mut ta = RankedLists::new(lists.clone());
        let winners = threshold_topk(&mut ta, k, Aggregation::Sum);
        // Fagin's Algorithm — correct but weaker stopping rule.
        let mut fa = RankedLists::new(lists.clone());
        let _ = fagin_topk(&mut fa, k, Aggregation::Sum);
        // NRA — no random accesses at all.
        let mut nra = RankedLists::new(lists.clone());
        let _ = nra_topk(&mut nra, k, Aggregation::Sum);

        println!("{name} lists:");
        println!(
            "  TA : {:>6} sorted + {:>6} random accesses",
            ta.counters().sorted,
            ta.counters().random
        );
        println!(
            "  FA : {:>6} sorted + {:>6} random accesses",
            fa.counters().sorted,
            fa.counters().random
        );
        println!(
            "  NRA: {:>6} sorted + {:>6} random accesses",
            nra.counters().sorted,
            nra.counters().random
        );
        let ids: Vec<String> = winners.iter().map(|w| format!("{}", w.0)).collect();
        println!(
            "  top-{k} objects: [{}]  (full scan = {})\n",
            ids.join(", "),
            n * m
        );
    }

    println!(
        "Observation (the paper's Part 1 message): these costs count\n\
         *accesses only*. The computation between accesses — joining\n\
         partial objects, maintaining bound intervals — is free in this\n\
         model, which is exactly what breaks down for join queries with\n\
         large intermediate results. See `cargo run --release -p\n\
         anyk-bench --bin experiments -- e8` for the RAM-model contrast."
    );
}
