//! # anyk — Optimal Join Algorithms Meet Top-k
//!
//! A Rust implementation of the algorithm families surveyed in
//! *"Optimal Join Algorithms Meet Top-k"* (Tziavelis, Gatterbauer,
//! Riedewald — SIGMOD 2020): classic top-k (Fagin/Threshold/NRA,
//! rank-join), (worst-case) optimal joins (Yannakakis, Generic-Join,
//! decompositions, AGM bound), and their intersection — **ranked
//! enumeration ("any-k")** over join queries.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`storage`] — relational substrate (values, relations, indexes,
//!   tries).
//! * [`query`] — conjunctive queries, hypergraphs, acyclicity,
//!   decompositions, widths, the AGM bound.
//! * [`join`] — batch joins: Yannakakis, binary plans, Generic-Join,
//!   Boolean evaluation, the 4-cycle union-of-trees plan.
//! * [`topk`] — classic top-k: FA, TA, NRA, HRJN rank-join, J*.
//! * [`core`] — any-k ranked enumeration: T-DP, ANYK-PART (Eager / All /
//!   Take2 / Lazy / Quick), ANYK-REC, batch baselines, cyclic plans.
//! * [`workloads`] — seeded synthetic generators for every experiment.
//!
//! ## Quickstart
//!
//! ```
//! use anyk::core::{AnyKPart, SuccessorKind, SumCost, TdpInstance};
//! use anyk::workloads::graphs::WeightDist;
//! use anyk::workloads::patterns::path_instance;
//!
//! // A 3-relation path query over a small random weighted graph.
//! let inst = path_instance(3, 200, 20, WeightDist::Uniform, 7);
//! let tdp = TdpInstance::<SumCost>::prepare(
//!     &inst.query, &inst.join_tree, inst.relations_clone(),
//! ).unwrap();
//! let mut anyk = AnyKPart::new(tdp, SuccessorKind::Lazy);
//! // Ranked answers arrive one by one, cheapest first, no k needed upfront.
//! let first = anyk.next().unwrap();
//! let second = anyk.next().unwrap();
//! assert!(first.cost <= second.cost);
//! ```

/// One-stop imports for typical usage.
///
/// ```
/// use anyk::prelude::*;
/// let q = path_query(2);
/// assert!(is_acyclic(&q));
/// ```
pub mod prelude {
    pub use anyk_core::{
        AnyK, AnyKPart, AnyKRec, BatchHeap, BatchSorted, LexCost, MaxCost, MinCost, ProdCost,
        RankedAnswer, RankingFunction, SuccessorKind, SumCost, TdpInstance, UnrankedEnum,
    };
    pub use anyk_query::cq::{cycle_query, path_query, star_query, triangle_query, QueryBuilder};
    pub use anyk_query::gyo::{gyo_reduce, is_acyclic, GyoResult};
    pub use anyk_storage::{Relation, RelationBuilder, Schema, Value, Weight};
    pub use anyk_workloads::graphs::WeightDist;
    pub use anyk_workloads::patterns::{path_instance, star_instance};
}

pub use anyk_core as core;
pub use anyk_join as join;
pub use anyk_query as query;
pub use anyk_storage as storage;
pub use anyk_topk as topk;
pub use anyk_workloads as workloads;
