//! # anyk — Optimal Join Algorithms Meet Top-k
//!
//! A Rust implementation of the algorithm families surveyed in
//! *"Optimal Join Algorithms Meet Top-k"* (Tziavelis, Gatterbauer,
//! Riedewald — SIGMOD 2020): classic top-k (Fagin/Threshold/NRA,
//! rank-join), (worst-case) optimal joins (Yannakakis, Generic-Join,
//! decompositions, AGM bound), and their intersection — **ranked
//! enumeration ("any-k")** over join queries.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`engine`] — **the unified entry point**: a planner-routed
//!   [`Engine`](engine::Engine) that turns any conjunctive query plus
//!   a runtime [`RankSpec`](engine::RankSpec) into a
//!   [`RankedStream`](engine::RankedStream).
//! * [`serve`] — the query **service**: a textual ranked-CQ language
//!   (`SELECT R(x,y), S(y,z) RANK BY sum LIMIT 10;`), per-session
//!   cursor registries with shared TTL deadlines + admission control,
//!   and a line protocol over TCP — an event-driven readiness
//!   transport by default, thread-per-connection as the fallback —
//!   or the in-process [`LocalClient`](serve::LocalClient). See
//!   `docs/ARCHITECTURE.md` for the full layer map.
//! * [`storage`] — relational substrate (values, relations, indexes,
//!   tries).
//! * [`query`] — conjunctive queries, hypergraphs, acyclicity,
//!   decompositions, widths, the AGM bound.
//! * [`join`] — batch joins: Yannakakis, binary plans, Generic-Join,
//!   Boolean evaluation, the 4-cycle union-of-trees plan.
//! * [`topk`] — classic top-k: FA, TA, NRA, HRJN rank-join, J*.
//! * [`core`] — any-k ranked enumeration: T-DP, ANYK-PART (Eager / All /
//!   Take2 / Lazy / Quick), ANYK-REC, batch baselines, cyclic plans.
//! * [`workloads`] — seeded synthetic generators for every experiment.
//!
//! ## Quickstart
//!
//! Register relations in a catalog, hand the engine a query and a
//! ranking, and pull answers cheapest-first. The planner routes by
//! query shape (GYO + T-DP for acyclic queries, specialized cyclic
//! plans otherwise) — no algorithm selection required:
//!
//! ```
//! use anyk::prelude::*;
//!
//! let mut catalog = Catalog::new();
//! let mut r = RelationBuilder::new(Schema::new(["a", "b"]));
//! r.push_ints(&[1, 10], 0.3);
//! r.push_ints(&[2, 10], 0.1);
//! catalog.register("R", r.finish());
//! let mut s = RelationBuilder::new(Schema::new(["b", "c"]));
//! s.push_ints(&[10, 100], 0.5);
//! s.push_ints(&[10, 200], 0.05);
//! catalog.register("S", s.finish());
//!
//! let engine = Engine::new(catalog);
//! let q = QueryBuilder::new()
//!     .atom("R", &["a", "b"])
//!     .atom("S", &["b", "c"])
//!     .build();
//!
//! // Ranked answers arrive one by one, cheapest first, no k needed
//! // upfront; the ranking function is a runtime value.
//! let mut stream = engine.query(q).rank_by(RankSpec::Sum).plan()?;
//! let first = stream.next().unwrap();
//! let second = stream.next().unwrap();
//! assert!(first.cost <= second.cost);
//! assert_eq!(first.ints(), vec![2, 10, 200]); // 0.1 + 0.05
//! # Ok::<(), anyk::engine::EngineError>(())
//! ```
//!
//! The hand-wired layers ([`core`], [`join`], …) remain public for
//! benchmarks and for callers that need one specific algorithm.

/// One-stop imports for typical usage.
///
/// ```
/// use anyk::prelude::*;
/// let q = path_query(2);
/// assert!(is_acyclic(&q));
/// ```
pub mod prelude {
    pub use anyk_core::{
        AnyK, AnyKPart, AnyKRec, BatchHeap, BatchSorted, LexCost, MaxCost, MinCost, ProdCost,
        RankingFunction, SuccessorKind, SumCost, TdpInstance, UnrankedEnum,
    };
    pub use anyk_engine::{
        AnyKVariant, Cost, Engine, EngineError, EngineOpts, Plan, PreparedQuery, RankSpec,
        RankedAnswer, RankedStream, Route, ShardedEngine, ShardedPrepared,
    };
    pub use anyk_query::cq::{cycle_query, path_query, star_query, triangle_query, QueryBuilder};
    pub use anyk_query::gyo::{gyo_reduce, is_acyclic, GyoResult};
    pub use anyk_serve::{BindError, LocalClient, ServeError, Service, ServiceConfig};
    pub use anyk_storage::{
        Catalog, Relation, RelationBuilder, Schema, StorageError, Value, Weight,
    };
    pub use anyk_workloads::graphs::WeightDist;
    pub use anyk_workloads::patterns::{path_instance, star_instance};
}

pub use anyk_core as core;
pub use anyk_engine as engine;
pub use anyk_join as join;
pub use anyk_query as query;
pub use anyk_serve as serve;
pub use anyk_storage as storage;
pub use anyk_topk as topk;
pub use anyk_workloads as workloads;
