//! The one instance generator the oracle, property, and concurrency
//! tests all share (previously three near-identical copies).
//!
//! All generators emit **dyadic** weights (small multiples of powers
//! of two): sums and small products of dyadics are exact in `f64`, so
//! cost comparisons against the oracle are bitwise even though the
//! engine and the oracle combine weights in different orders.

use anyk::prelude::*;
use proptest::prelude::*;

/// Proptest config whose case count can be raised from the
/// environment (`ANYK_PROPTEST_CASES`) — CI runs the oracle and cyclic
/// property suites with more cases than a local `cargo test`.
pub fn cases_from_env(default_cases: u32) -> ProptestConfig {
    let cases = std::env::var("ANYK_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_cases);
    ProptestConfig::with_cases(cases)
}

/// Random binary relation over a small domain with dyadic weights
/// (multiples of 1/4 below 16).
pub fn arb_relation(max_rows: usize, domain: i64) -> impl Strategy<Value = Relation> {
    prop::collection::vec((0..domain, 0..domain, 0i32..64), 1..=max_rows).prop_map(|rows| {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for (x, y, w) in rows {
            b.push_ints(&[x, y], w as f64 / 4.0);
        }
        b.finish()
    })
}

/// Deterministic pseudo-random edge relation (xorshift64) with dyadic
/// weights — the fixed-seed flavor for tests that need reproducible
/// instances without a proptest runner (concurrency tests, fixtures).
pub fn scrambled_edges(n: u64, domain: i64, seed: u64) -> Relation {
    let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
    let mut x = seed | 1;
    for _ in 0..n {
        // xorshift64
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let a = (x % domain as u64) as i64;
        let c = ((x >> 17) % domain as u64) as i64;
        let w = ((x >> 37) % 64) as f64 / 8.0;
        b.push_ints(&[a, c], w);
    }
    b.finish()
}

/// Small fixed edge relation from explicit rows — fixture helper.
pub fn edge_rel(rows: &[(i64, i64, f64)]) -> Relation {
    let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
    for &(x, y, w) in rows {
        b.push_ints(&[x, y], w);
    }
    b.finish()
}

/// The random acyclic query shapes the property tests draw from:
/// `star == 0` → an `n`-path, otherwise an `n`-star.
pub fn shaped_acyclic_query(star: usize, n: usize) -> anyk::query::cq::ConjunctiveQuery {
    if star == 0 {
        path_query(n)
    } else {
        star_query(n)
    }
}

/// A snowflake query: a 3-star whose first two arms extend by one more
/// hop — the third acyclic shape (beyond path/star) the oracle suite
/// pins.
pub fn snowflake_query() -> anyk::query::cq::ConjunctiveQuery {
    QueryBuilder::new()
        .atom("S1", &["c", "a1"])
        .atom("S2", &["c", "a2"])
        .atom("S3", &["c", "a3"])
        .atom("P1", &["a1", "b1"])
        .atom("P2", &["a2", "b2"])
        .build()
}
