//! Shared helpers for the integration-test suite: the instance
//! generators ([`gen`]) and the brute-force ranked-join oracle
//! ([`oracle`]). Every test binary compiles its own copy and uses a
//! subset, hence the blanket `dead_code` allow.
#![allow(dead_code)]

pub mod gen;
pub mod oracle;
