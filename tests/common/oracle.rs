//! The brute-force oracle: nested-loop join + total-order sort.
//!
//! No join trees, no decompositions, no heaps — every answer is found
//! by trying row combinations atom by atom (pruned only by binding
//! consistency), and its cost is computed directly from the tuple
//! weights. Sorting by `(cost, values)` then yields a reference
//! *total order* against which every planner route and every any-k
//! variant is cross-checked — full ranked order, not just top-k.
//!
//! Tie semantics: the engine's streams order cost-ties by internal
//! enumeration order, which is deterministic but not value-sorted, so
//! the cross-check asserts (a) the exact cost sequence and (b) multiset
//! equality of the answers inside every cost-tie group.

use anyk::prelude::*;
use anyk::query::cq::ConjunctiveQuery;

/// One oracle answer: erased cost (same representation the engine
/// streams) plus the output tuple in `VarId` order.
pub type OracleAnswer = (Cost, Vec<Value>);

/// All answers of `q` over `rels` by brute force, ranked under `rank`,
/// sorted by `(cost, values)`.
///
/// Lexicographic costs replicate the engine's definition: weights in
/// the GYO join tree's pre-order serialization on acyclic queries, and
/// in **canonical atom order** on cyclic queries (where the engine
/// serves `Lex` from the materialized answer set).
pub fn brute_force_ranked(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    rank: RankSpec,
) -> Vec<OracleAnswer> {
    assert_eq!(q.num_atoms(), rels.len(), "one relation per atom");
    let lex_order: Option<Vec<usize>> = match rank {
        RankSpec::Lex => match gyo_reduce(q) {
            GyoResult::Acyclic(tree) => {
                Some(tree.preorder().iter().map(|&n| tree.node(n).atom).collect())
            }
            GyoResult::Cyclic(_) => Some((0..q.num_atoms()).collect()),
        },
        _ => None,
    };

    let mut out = Vec::new();
    let mut binding: Vec<Option<Value>> = vec![None; q.num_vars()];
    let mut rows: Vec<u32> = vec![0; q.num_atoms()];
    nested_loop(q, rels, 0, &mut binding, &mut rows, &mut |binding, rows| {
        let weights: Vec<Weight> = rows
            .iter()
            .enumerate()
            .map(|(a, &r)| rels[a].weight(r))
            .collect();
        let cost = combine(rank, &weights, lex_order.as_deref());
        let values: Vec<Value> = binding
            .iter()
            .map(|v| v.expect("full CQ: every variable bound"))
            .collect();
        out.push((cost, values));
    });
    out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    out
}

/// Plain nested-loop join: extend the binding one atom at a time.
fn nested_loop(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    atom: usize,
    binding: &mut Vec<Option<Value>>,
    rows: &mut Vec<u32>,
    emit: &mut impl FnMut(&[Option<Value>], &[u32]),
) {
    if atom == q.num_atoms() {
        emit(binding, rows);
        return;
    }
    let vars = &q.atom(atom).vars;
    'rows: for r in 0..rels[atom].len() as u32 {
        let tuple = rels[atom].row(r);
        let mut bound_here = Vec::with_capacity(vars.len());
        for (pos, &v) in vars.iter().enumerate() {
            match binding[v] {
                Some(existing) if existing != tuple[pos] => {
                    for &u in &bound_here {
                        binding[u] = None;
                    }
                    continue 'rows;
                }
                Some(_) => {}
                None => {
                    binding[v] = Some(tuple[pos]);
                    bound_here.push(v);
                }
            }
        }
        rows[atom] = r;
        nested_loop(q, rels, atom + 1, binding, rows, emit);
        for &u in &bound_here {
            binding[u] = None;
        }
    }
}

/// Combine tuple weights under `rank`. For `Lex`, `lex_order` gives
/// the atom order of the serialization.
fn combine(rank: RankSpec, weights: &[Weight], lex_order: Option<&[usize]>) -> Cost {
    match rank {
        RankSpec::Sum => Cost::Scalar(Weight::new(weights.iter().map(|w| w.get()).sum())),
        RankSpec::Max => Cost::Scalar(*weights.iter().max().expect("full CQ has atoms")),
        RankSpec::Min => Cost::Scalar(*weights.iter().min().expect("full CQ has atoms")),
        RankSpec::Prod => Cost::Scalar(Weight::new(weights.iter().map(|w| w.get()).product())),
        RankSpec::Lex => Cost::Lex(
            lex_order
                .expect("lex order precomputed")
                .iter()
                .map(|&a| weights[a])
                .collect(),
        ),
    }
}

/// Assert a ranked engine stream equals the oracle's total order:
/// identical cost sequence, and multiset-identical answers within
/// every cost-tie group.
pub fn assert_matches_oracle(got: &[RankedAnswer], want: &[OracleAnswer], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: cardinality");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.cost, w.0, "{label}: cost at rank {i}");
    }
    let mut i = 0;
    while i < got.len() {
        let mut j = i;
        while j < got.len() && got[j].cost == got[i].cost {
            j += 1;
        }
        let mut gv: Vec<_> = got[i..j].iter().map(|a| a.values.clone()).collect();
        let mut wv: Vec<_> = want[i..j].iter().map(|w| w.1.clone()).collect();
        gv.sort();
        wv.sort();
        assert_eq!(gv, wv, "{label}: answers in the cost-tie group at rank {i}");
        i = j;
    }
}

/// End-to-end cross-check: the planner-routed engine's full ranked
/// order over `(q, rels, rank)` must match the brute-force oracle.
/// Returns the engine's answers so callers can pile on further checks.
pub fn check_engine_against_oracle(
    q: &ConjunctiveQuery,
    rels: &[Relation],
    rank: RankSpec,
    label: &str,
) -> Vec<RankedAnswer> {
    let want = brute_force_ranked(q, rels, rank);
    let engine = Engine::from_query_bindings(q, rels.to_vec());
    let got: Vec<RankedAnswer> = engine
        .query(q.clone())
        .rank_by(rank)
        .plan()
        .unwrap_or_else(|e| panic!("{label}: plan failed: {e}"))
        .collect();
    assert_matches_oracle(&got, &want, label);
    got
}

/// Write-path cross-check on one `(q, base, appends, rank)` instance.
///
/// A live engine takes `appends` — `(atom index, batch)` pairs, in
/// order — through [`Engine::append`], and its delta-backed prepared
/// stream must (a) match the brute-force oracle over base ⊎ deltas
/// and (b) be **byte-identical** to a fresh single-payload engine's
/// canonical-tie stream: the delta union merges its terms with the
/// canonical `(cost, values, source)` tie-break, so the equality is
/// positional, not just tie-group-wise. Compacting every delta and
/// re-preparing must serve the identical bytes again.
///
/// Atoms must carry distinct relation names (the per-atom base ⊎
/// deltas reconstruction maps batches by atom index).
pub fn check_write_path_against_oracle(
    q: &ConjunctiveQuery,
    base: &[Relation],
    appends: &[(usize, Relation)],
    rank: RankSpec,
    label: &str,
) {
    // The live engine receives the batches through the write path.
    let engine = Engine::from_query_bindings(q, base.to_vec());
    for (atom, batch) in appends {
        engine
            .append(&q.atom(*atom).relation, batch.clone())
            .unwrap_or_else(|e| panic!("{label}: append: {e}"));
    }
    // Ground truth: base ⊎ deltas flattened per atom, in append order —
    // both the oracle and the single-payload reference run on it.
    let combined: Vec<Relation> = (0..q.num_atoms())
        .map(|i| {
            let mut parts = vec![base[i].clone()];
            parts.extend(
                appends
                    .iter()
                    .filter(|(a, _)| *a == i)
                    .map(|(_, b)| b.clone()),
            );
            Relation::concat(&parts)
        })
        .collect();
    let want = brute_force_ranked(q, &combined, rank);
    let delta_backed: Vec<RankedAnswer> = engine
        .prepare(q.clone(), rank)
        .unwrap_or_else(|e| panic!("{label}: delta prepare: {e}"))
        .stream()
        .collect();
    assert_matches_oracle(&delta_backed, &want, &format!("{label}: delta-backed"));

    let single = Engine::from_query_bindings(q, combined);
    let canonical: Vec<RankedAnswer> = single
        .prepare(q.clone(), rank)
        .unwrap_or_else(|e| panic!("{label}: single prepare: {e}"))
        .stream()
        .canonical_ties()
        .collect();
    assert_eq!(
        delta_backed, canonical,
        "{label}: delta-backed stream must be byte-identical to the \
         single-payload canonical stream"
    );

    // Compaction folds the deltas into a fresh base payload; under the
    // canonical tie-break the served bytes must not move.
    for i in 0..q.num_atoms() {
        engine
            .compact(&q.atom(i).relation)
            .unwrap_or_else(|e| panic!("{label}: compact: {e}"));
    }
    let compacted: Vec<RankedAnswer> = engine
        .prepare(q.clone(), rank)
        .unwrap_or_else(|e| panic!("{label}: post-compact prepare: {e}"))
        .stream()
        .canonical_ties()
        .collect();
    assert_eq!(
        compacted, canonical,
        "{label}: compacted stream must serve the identical bytes"
    );
}

/// The serving-path equivalences on one instance: prepared-then-stream
/// == ad-hoc plan == oracle order, and repeated prepared streams are
/// byte-identical (separate engines, so nothing is shared via a cache).
pub fn check_prepared_adhoc_oracle(q: &ConjunctiveQuery, rels: &[Relation], rank: RankSpec) {
    let want = brute_force_ranked(q, rels, rank);
    let adhoc_engine = Engine::from_query_bindings(q, rels.to_vec());
    let adhoc: Vec<RankedAnswer> = adhoc_engine
        .query(q.clone())
        .rank_by(rank)
        .plan()
        .expect("plannable")
        .collect();
    assert_matches_oracle(&adhoc, &want, &format!("{rank}: ad-hoc vs oracle"));

    let serve_engine = Engine::from_query_bindings(q, rels.to_vec());
    let prepared = serve_engine.prepare(q.clone(), rank).expect("preparable");
    let s1: Vec<RankedAnswer> = prepared.stream().collect();
    let s2: Vec<RankedAnswer> = prepared.stream().collect();
    assert_eq!(s1, adhoc, "{rank}: prepared stream == ad-hoc plan");
    assert_eq!(
        s2, adhoc,
        "{rank}: second prepared stream replays identically"
    );
}
