//! Concurrent serving: one `Engine` / one `PreparedQuery`, many
//! threads. Every thread must observe the *identical* ranked stream —
//! same costs, same tuples, same order (ties included) — because the
//! prepared state is immutable shared data and each stream is an
//! independent cursor/heap over it.

mod common;

use anyk::prelude::*;
use common::gen::scrambled_edges;
use std::thread;

fn answers(stream: RankedStream) -> Vec<(Vec<i64>, Cost)> {
    stream.map(|a| (a.ints(), a.cost)).collect()
}

#[test]
fn threads_sharing_one_prepared_query_get_identical_streams() {
    let q = path_query(3);
    let rels = vec![
        scrambled_edges(300, 12, 3),
        scrambled_edges(300, 12, 5),
        scrambled_edges(300, 12, 7),
    ];
    let engine = Engine::from_query_bindings(&q, rels);
    let prepared = engine.prepare(q, RankSpec::Sum).expect("acyclic prepare");
    let baseline = answers(prepared.stream());
    assert!(!baseline.is_empty(), "instance must have answers");

    thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let p = prepared.clone();
                s.spawn(move || answers(p.stream()))
            })
            .collect();
        for h in handles {
            assert_eq!(
                h.join().expect("worker thread"),
                baseline,
                "every thread must see the identical ranked stream"
            );
        }
    });
}

#[test]
fn threads_sharing_one_engine_plan_identically() {
    // The ad-hoc path: all threads go through the shared plan cache of
    // one engine (clones are handles to the same engine). Mix rankings
    // so threads exercise different cache entries concurrently.
    let q = path_query(2);
    let rels = vec![scrambled_edges(400, 15, 11), scrambled_edges(400, 15, 13)];
    let engine = Engine::from_query_bindings(&q, rels);
    let baselines: Vec<Vec<(Vec<i64>, Cost)>> = [RankSpec::Sum, RankSpec::Max, RankSpec::Lex]
        .iter()
        .map(|&r| answers(engine.query(q.clone()).rank_by(r).plan().unwrap()))
        .collect();

    thread::scope(|s| {
        let handles: Vec<_> = (0..9)
            .map(|i| {
                let engine = engine.clone();
                let q = q.clone();
                s.spawn(move || {
                    let rank = [RankSpec::Sum, RankSpec::Max, RankSpec::Lex][i % 3];
                    (
                        i % 3,
                        answers(engine.query(q).rank_by(rank).plan().unwrap()),
                    )
                })
            })
            .collect();
        for h in handles {
            let (which, got) = h.join().expect("worker thread");
            assert_eq!(got, baselines[which], "rank #{which}");
        }
    });
}

#[test]
fn concurrent_streams_over_prepared_cyclic_plans() {
    // The union-of-trees (4-cycle) and sorted-answers (triangle)
    // prepared artifacts are shared across threads too.
    let e = scrambled_edges(120, 8, 17);
    for (label, q, m) in [
        ("triangle", triangle_query(), 3usize),
        ("c4", cycle_query(4), 4),
    ] {
        let rels: Vec<Relation> = (0..m).map(|_| e.clone()).collect();
        let engine = Engine::from_query_bindings(&q, rels);
        let prepared = engine.prepare(q, RankSpec::Sum).expect("cyclic prepare");
        let baseline = answers(prepared.stream());
        thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let p = prepared.clone();
                    s.spawn(move || answers(p.stream()))
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().expect("worker"), baseline, "{label}");
            }
        });
    }
}

#[test]
fn concurrent_triangle_first_stream_races_the_upgrade() {
    // The triangle route's first stream is a lazy heap; any further
    // spawn installs the shared sorted artifact. Racing eight threads
    // through that state machine must still produce byte-identical
    // streams — ties included — whichever thread wins the heap.
    let e = scrambled_edges(150, 8, 41);
    let q = triangle_query();
    let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e]);
    let prepared = engine.prepare(q, RankSpec::Sum).expect("triangle prepare");
    assert_eq!(
        prepared.sort_deferred(),
        Some(true),
        "prepare must not pay the sort"
    );
    let results: Vec<Vec<(Vec<i64>, Cost)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let p = prepared.clone();
                s.spawn(move || answers(p.stream()))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    assert!(!results[0].is_empty(), "instance must have triangles");
    for r in &results[1..] {
        assert_eq!(r, &results[0], "lazy heap and sorted cursors agree");
    }
    assert_eq!(
        prepared.sort_deferred(),
        Some(false),
        "multiple spawns install the sorted artifact"
    );
}

#[test]
fn interleaved_pulls_do_not_interfere() {
    // Two streams over one prepared query advanced in lock-step must
    // not share cursor state.
    let q = path_query(2);
    let rels = vec![scrambled_edges(100, 6, 19), scrambled_edges(100, 6, 23)];
    let engine = Engine::from_query_bindings(&q, rels);
    let prepared = engine.prepare(q, RankSpec::Sum).unwrap();
    let expected = answers(prepared.stream());

    let mut a = prepared.stream();
    let mut b = prepared.stream();
    let mut got_a = Vec::new();
    let mut got_b = Vec::new();
    loop {
        let xa = a.next();
        let xb = b.next();
        assert_eq!(xa.is_some(), xb.is_some());
        match (xa, xb) {
            (Some(x), Some(y)) => {
                got_a.push((x.ints(), x.cost));
                got_b.push((y.ints(), y.cost));
            }
            _ => break,
        }
    }
    assert_eq!(got_a, expected);
    assert_eq!(got_b, expected);
}

#[test]
fn catalog_update_during_serving_is_snapshot_isolated() {
    // A prepared query keeps serving its snapshot while another thread
    // replaces the underlying relation; plans made after the update see
    // the new data (epoch bump invalidates the cache).
    let q = path_query(2);
    let r1 = scrambled_edges(200, 10, 29);
    let r2 = scrambled_edges(200, 10, 31);
    let engine = Engine::from_query_bindings(&q, vec![r1, r2]);
    let prepared = engine.prepare(q.clone(), RankSpec::Sum).unwrap();
    let before = answers(prepared.stream());
    let epoch0 = engine.catalog_epoch();

    thread::scope(|s| {
        let updater = {
            let engine = engine.clone();
            s.spawn(move || engine.register("R2", scrambled_edges(50, 10, 37)))
        };
        // Serving from the prepared snapshot is undisturbed, whether
        // the update has landed or not.
        assert_eq!(answers(prepared.stream()), before);
        updater.join().expect("updater");
    });

    assert_eq!(engine.catalog_epoch(), epoch0 + 1);
    assert_eq!(
        answers(prepared.stream()),
        before,
        "prepared snapshot survives the catalog update"
    );
    let fresh = answers(engine.query(q).plan().unwrap());
    assert_ne!(fresh, before, "new plans see the replaced relation");
}
