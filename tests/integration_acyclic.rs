//! Cross-crate integration tests for acyclic ranked enumeration:
//! every any-k engine must agree with the batch oracle on randomized
//! workloads, across query shapes and ranking functions.

use anyk::core::{
    AnyKPart, AnyKRec, BatchSorted, MaxCost, RankingFunction, SuccessorKind, SumCost, TdpInstance,
};
use anyk::join::nested_loop::nested_loop_join;
use anyk::join::yannakakis::yannakakis_count;
use anyk::query::cq::ConjunctiveQuery;
use anyk::query::join_tree::JoinTree;
use anyk::storage::Relation;
use anyk::workloads::graphs::WeightDist;
use anyk::workloads::patterns::{path_instance, star_instance, AcyclicInstance};

/// Collect `(cost, values)` from any engine.
fn collect<R, I>(it: I) -> Vec<(R::Cost, Vec<i64>)>
where
    R: RankingFunction,
    I: Iterator<Item = anyk::core::RankedAnswer<R::Cost>>,
{
    it.map(|a| (a.cost, a.values.iter().map(|v| v.int()).collect()))
        .collect()
}

fn check_engines_agree<R: RankingFunction>(
    q: &ConjunctiveQuery,
    tree: &JoinTree,
    rels: &[Relation],
) {
    let oracle = collect::<R, _>(BatchSorted::<R>::new(q, tree, rels.to_vec()));
    // All PART variants.
    for kind in SuccessorKind::ALL_KINDS {
        let inst = TdpInstance::<R>::prepare(q, tree, rels.to_vec()).unwrap();
        let got = collect::<R, _>(AnyKPart::new(inst, kind));
        assert_eq!(got.len(), oracle.len(), "{kind:?}: cardinality");
        for (i, ((gc, _), (oc, _))) in got.iter().zip(&oracle).enumerate() {
            assert_eq!(gc, oc, "{kind:?}: cost at rank {i}");
        }
        // Same multiset of answers.
        let mut gv: Vec<_> = got.into_iter().map(|x| x.1).collect();
        let mut ov: Vec<_> = oracle.iter().map(|x| x.1.clone()).collect();
        gv.sort();
        ov.sort();
        assert_eq!(gv, ov, "{kind:?}: answer multiset");
    }
    // REC.
    let inst = TdpInstance::<R>::prepare(q, tree, rels.to_vec()).unwrap();
    let got = collect::<R, _>(AnyKRec::new(inst));
    assert_eq!(got.len(), oracle.len(), "rec: cardinality");
    for (i, ((gc, _), (oc, _))) in got.iter().zip(&oracle).enumerate() {
        assert_eq!(gc, oc, "rec: cost at rank {i}");
    }
}

fn check_instance(inst: &AcyclicInstance) {
    check_engines_agree::<SumCost>(&inst.query, &inst.join_tree, &inst.relations);
    check_engines_agree::<MaxCost>(&inst.query, &inst.join_tree, &inst.relations);
}

#[test]
fn path_queries_random_seeds() {
    for seed in [1u64, 2, 3] {
        for len in [2usize, 3, 4] {
            let inst = path_instance(len, 60, 8, WeightDist::UniformDyadic, seed);
            check_instance(&inst);
        }
    }
}

#[test]
fn star_queries_random_seeds() {
    for seed in [4u64, 5] {
        for arms in [2usize, 3, 4] {
            let inst = star_instance(arms, 50, 6, WeightDist::UniformDyadic, seed);
            check_instance(&inst);
        }
    }
}

#[test]
fn tie_heavy_constant_weights() {
    // All weights identical: pure tie-breaking stress.
    let inst = path_instance(3, 40, 5, WeightDist::Constant(1.0), 9);
    check_instance(&inst);
}

#[test]
fn correlated_weights() {
    // Power-of-two node count keeps CorrelatedWithKey weights dyadic
    // (src / 8), so cross-engine cost comparison stays exact.
    let inst = path_instance(3, 50, 8, WeightDist::CorrelatedWithKey, 11);
    check_instance(&inst);
}

#[test]
fn cardinality_matches_counting_dp() {
    for seed in [21u64, 22, 23] {
        let inst = path_instance(3, 80, 9, WeightDist::UniformDyadic, seed);
        let count = yannakakis_count(&inst.query, &inst.join_tree, inst.relations_clone());
        let tdp =
            TdpInstance::<SumCost>::prepare(&inst.query, &inst.join_tree, inst.relations_clone())
                .unwrap();
        let enumerated = AnyKPart::new(tdp, SuccessorKind::Take2).count() as u128;
        assert_eq!(enumerated, count, "seed {seed}");
    }
}

#[test]
fn matches_nested_loop_oracle_on_small_instances() {
    for seed in [31u64, 32] {
        let inst = path_instance(2, 15, 4, WeightDist::UniformDyadic, seed);
        let nl = nested_loop_join(&inst.query, &inst.relations);
        let mut oracle: Vec<f64> = (0..nl.len() as u32).map(|i| nl.weight(i).get()).collect();
        oracle.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let tdp =
            TdpInstance::<SumCost>::prepare(&inst.query, &inst.join_tree, inst.relations_clone())
                .unwrap();
        let got: Vec<f64> = AnyKPart::new(tdp, SuccessorKind::Lazy)
            .map(|a| a.cost.get())
            .collect();
        assert_eq!(got.len(), oracle.len());
        for (g, o) in got.iter().zip(&oracle) {
            assert!((g - o).abs() < 1e-9);
        }
    }
}

#[test]
fn prefix_stability_across_k() {
    let inst = path_instance(3, 60, 8, WeightDist::UniformDyadic, 41);
    let full: Vec<f64> = {
        let tdp =
            TdpInstance::<SumCost>::prepare(&inst.query, &inst.join_tree, inst.relations_clone())
                .unwrap();
        AnyKPart::new(tdp, SuccessorKind::Quick)
            .map(|a| a.cost.get())
            .collect()
    };
    for k in [1usize, 5, 17, full.len()] {
        let tdp =
            TdpInstance::<SumCost>::prepare(&inst.query, &inst.join_tree, inst.relations_clone())
                .unwrap();
        let partial: Vec<f64> = AnyKPart::new(tdp, SuccessorKind::Quick)
            .take(k)
            .map(|a| a.cost.get())
            .collect();
        assert_eq!(partial.len(), k.min(full.len()));
        for (p, f) in partial.iter().zip(&full) {
            assert_eq!(p, f);
        }
    }
}
