//! Cross-crate integration tests for cyclic queries: the C4
//! union-of-trees plan and the triangle materialize-then-rank pipeline
//! against Generic-Join oracles, across thresholds, skew, and engines.

use anyk::core::cyclic::{c4_ranked_part, c4_ranked_rec, triangle_ranked};
use anyk::core::{SuccessorKind, SumCost};
use anyk::join::boolean::{boolean_generic_join, c4_exists};
use anyk::join::c4::c4_join;
use anyk::join::generic_join::generic_join_materialize;
use anyk::join::nested_loop::assert_same_result;
use anyk::query::cq::{cycle_query, triangle_query};
use anyk::query::cycles::heavy_threshold;
use anyk::storage::Relation;
use anyk::workloads::graphs::{random_edge_relation, WeightDist};

/// Sorted (cost, tuple) oracle via Generic-Join.
fn c4_oracle(rels: &[Relation]) -> Vec<(f64, Vec<i64>)> {
    let q = cycle_query(4);
    let (res, _) = generic_join_materialize(&q, rels, None);
    let mut out: Vec<(f64, Vec<i64>)> = (0..res.len() as u32)
        .map(|i| {
            (
                res.weight(i).get(),
                res.row(i).iter().map(|v| v.int()).collect(),
            )
        })
        .collect();
    out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    out
}

fn check_c4(rels: &[Relation]) {
    let oracle = c4_oracle(rels);
    let n = rels.iter().map(Relation::len).max().unwrap_or(0);
    for thr in [0usize, heavy_threshold(n), usize::MAX / 2] {
        // Batch plan agrees with Generic-Join.
        let batch = c4_join(rels, thr);
        let (gj, _) = generic_join_materialize(&cycle_query(4), rels, None);
        assert_same_result(&batch, &gj);
        // Ranked plans emit the same costs in order.
        for engine in ["part", "rec"] {
            let got: Vec<f64> = match engine {
                "part" => c4_ranked_part::<SumCost>(rels, thr, SuccessorKind::Lazy)
                    .map(|a| a.cost.get())
                    .collect(),
                _ => c4_ranked_rec::<SumCost>(rels, thr)
                    .map(|a| a.cost.get())
                    .collect(),
            };
            assert_eq!(got.len(), oracle.len(), "{engine} thr {thr}");
            assert!(got.windows(2).all(|w| w[0] <= w[1]), "{engine}: order");
            for (i, (g, (o, _))) in got.iter().zip(&oracle).enumerate() {
                assert!(
                    (g - o).abs() < 1e-9,
                    "{engine} thr {thr}: cost {i}: {g} vs {o}"
                );
            }
        }
        // Boolean detection consistent with output emptiness.
        assert_eq!(c4_exists(rels, thr), !oracle.is_empty(), "thr {thr}");
    }
}

#[test]
fn c4_self_join_random_graphs() {
    for seed in [1u64, 2] {
        let e = random_edge_relation(60, 10, WeightDist::Uniform, None, seed);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        check_c4(&rels);
    }
}

#[test]
fn c4_skewed_graph() {
    let e = random_edge_relation(80, 12, WeightDist::Uniform, Some(1.5), 3);
    let rels = vec![e.clone(), e.clone(), e.clone(), e];
    check_c4(&rels);
}

#[test]
fn c4_distinct_relations() {
    let rels: Vec<Relation> = (0..4)
        .map(|i| random_edge_relation(40, 8, WeightDist::Uniform, None, 100 + i))
        .collect();
    check_c4(&rels);
}

#[test]
fn c4_empty_output() {
    // Bipartite-incompatible relations: no cycles close.
    let rels: Vec<Relation> = (0..4)
        .map(|i| {
            // Relation i maps range [100i, 100i+10) -> [100(i+1), ...):
            // the last cannot close back to the first.
            let mut b =
                anyk::storage::RelationBuilder::new(anyk::storage::Schema::new(["src", "dst"]));
            for k in 0..10i64 {
                b.push_ints(&[100 * i + k, 100 * (i + 1) + k], 0.5);
            }
            b.finish()
        })
        .collect();
    check_c4(&rels);
}

#[test]
fn triangle_ranked_pipeline() {
    for seed in [7u64, 8] {
        let e = random_edge_relation(80, 10, WeightDist::Uniform, None, seed);
        let rels = vec![e.clone(), e.clone(), e];
        let q = triangle_query();
        let (all, _) = generic_join_materialize(&q, &rels, None);
        let mut expect: Vec<f64> = (0..all.len() as u32).map(|i| all.weight(i).get()).collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got: Vec<f64> = triangle_ranked::<SumCost>(&rels)
            .map(|a| a.cost.get())
            .collect();
        assert_eq!(got.len(), expect.len(), "seed {seed}");
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9);
        }
        assert_eq!(
            boolean_generic_join(&q, &rels),
            !expect.is_empty(),
            "seed {seed}"
        );
    }
}

#[test]
fn c4_prefix_stability() {
    let e = random_edge_relation(70, 9, WeightDist::Uniform, None, 55);
    let rels = vec![e.clone(), e.clone(), e.clone(), e];
    let thr = heavy_threshold(70);
    let full: Vec<f64> = c4_ranked_part::<SumCost>(&rels, thr, SuccessorKind::Take2)
        .map(|a| a.cost.get())
        .collect();
    for k in [1usize, 3, 10, full.len()] {
        let partial: Vec<f64> = c4_ranked_part::<SumCost>(&rels, thr, SuccessorKind::Take2)
            .take(k)
            .map(|a| a.cost.get())
            .collect();
        assert_eq!(partial.len(), k.min(full.len()));
        for (p, f) in partial.iter().zip(&full) {
            assert_eq!(p, f);
        }
    }
}
