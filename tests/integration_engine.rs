//! Integration suite for the unified `Engine`: the planner must pick
//! the documented route for each query shape, and the routed stream
//! must agree — order and multiset — with the hand-wired engines it
//! routes to, under rankings chosen at runtime.

use anyk::core::{
    c4_ranked_part, decomposed_ranked_part, triangle_ranked, AnyKPart, MaxCost, RankingFunction,
    SuccessorKind, SumCost, TdpInstance,
};
use anyk::prelude::*;
use anyk::query::cycles::heavy_threshold;
use anyk::query::decompose::fhw_exact;
use anyk::query::hypergraph::Hypergraph;

fn edge_rel(rows: &[(i64, i64, f64)]) -> Relation {
    let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
    for &(x, y, w) in rows {
        b.push_ints(&[x, y], w);
    }
    b.finish()
}

/// A well-mixed weighted edge set with dyadic weights (exact float
/// arithmetic keeps cost comparisons bitwise across plans).
fn dense_edges(n: i64) -> Relation {
    let mut rows = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let w = ((i * 7 + j * 13) % 32) as f64 / 8.0;
                rows.push((i, j, w));
            }
        }
    }
    edge_rel(&rows)
}

/// Engine answers as (scalar cost, tuple) pairs.
fn run_engine(
    q: &ConjunctiveQueryAlias,
    rels: Vec<Relation>,
    rank: RankSpec,
) -> Vec<(f64, Vec<i64>)> {
    let engine = Engine::from_query_bindings(q, rels);
    engine
        .query(q.clone())
        .rank_by(rank)
        .plan()
        .expect("plannable")
        .map(|a| (a.cost.scalar().expect("scalar rank"), a.ints()))
        .collect()
}

type ConjunctiveQueryAlias = anyk::query::cq::ConjunctiveQuery;

/// Hand-wired acyclic reference: GYO + T-DP + ANYK-PART(Lazy).
fn run_handwired_acyclic<R: RankingFunction>(
    q: &ConjunctiveQueryAlias,
    rels: Vec<Relation>,
) -> Vec<(R::Cost, Vec<i64>)> {
    let tree = match gyo_reduce(q) {
        GyoResult::Acyclic(t) => t,
        _ => panic!("acyclic expected"),
    };
    let inst = TdpInstance::<R>::prepare(q, &tree, rels).unwrap();
    AnyKPart::new(inst, SuccessorKind::Lazy)
        .map(|a| (a.cost, a.values.iter().map(|v| v.int()).collect()))
        .collect()
}

fn assert_same_ranked(got: &[(f64, Vec<i64>)], want: &[(f64, Vec<i64>)], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: cardinality");
    assert!(
        got.windows(2).all(|w| w[0].0 <= w[1].0),
        "{label}: engine stream not sorted"
    );
    for (i, ((gc, _), (wc, _))) in got.iter().zip(want).enumerate() {
        assert_eq!(gc, wc, "{label}: cost at rank {i}");
    }
    let mut gv: Vec<_> = got.iter().map(|g| g.1.clone()).collect();
    let mut wv: Vec<_> = want.iter().map(|w| w.1.clone()).collect();
    gv.sort();
    wv.sort();
    assert_eq!(gv, wv, "{label}: answer multiset");
}

#[test]
fn acyclic_path_routes_and_agrees() {
    let q = path_query(3);
    let rels = vec![
        edge_rel(&[(1, 2, 0.5), (1, 3, 0.25), (2, 2, 1.0), (3, 2, 0.125)]),
        edge_rel(&[(2, 5, 0.5), (2, 6, 2.0), (3, 5, 0.0625)]),
        edge_rel(&[(5, 7, 1.0), (5, 8, 0.25), (6, 7, 0.5)]),
    ];
    let engine = Engine::from_query_bindings(&q, rels.clone());
    let plan = engine.query(q.clone()).explain().unwrap();
    assert!(matches!(plan.route, Route::Acyclic { .. }), "{plan:?}");

    for rank in [RankSpec::Sum, RankSpec::Max] {
        let got = run_engine(&q, rels.clone(), rank);
        let want: Vec<(f64, Vec<i64>)> = match rank {
            RankSpec::Sum => run_handwired_acyclic::<SumCost>(&q, rels.clone())
                .into_iter()
                .map(|(c, v)| (c.get(), v))
                .collect(),
            _ => run_handwired_acyclic::<MaxCost>(&q, rels.clone())
                .into_iter()
                .map(|(c, v)| (c.get(), v))
                .collect(),
        };
        assert_same_ranked(&got, &want, &format!("path3/{rank}"));
    }
}

#[test]
fn acyclic_path_lex_agrees() {
    let q = path_query(3);
    let rels = vec![
        edge_rel(&[(1, 2, 0.5), (1, 3, 0.25), (3, 2, 0.125)]),
        edge_rel(&[(2, 5, 0.5), (2, 6, 2.0), (3, 5, 0.0625)]),
        edge_rel(&[(5, 7, 1.0), (5, 8, 0.25), (6, 7, 0.5)]),
    ];
    let engine = Engine::from_query_bindings(&q, rels.clone());
    let got: Vec<(Vec<Weight>, Vec<i64>)> = engine
        .query(q.clone())
        .rank_by(RankSpec::Lex)
        .plan()
        .unwrap()
        .map(|a| (a.cost.lex().unwrap().to_vec(), a.ints()))
        .collect();
    let want = run_handwired_acyclic::<LexCost>(&q, rels);
    assert_eq!(got.len(), want.len(), "lex cardinality");
    for (i, ((gc, gv), (wc, wv))) in got.iter().zip(&want).enumerate() {
        assert_eq!(gc, wc, "lex cost at rank {i}");
        assert_eq!(gv, wv, "lex tuple at rank {i}");
    }
}

#[test]
fn acyclic_star_routes_and_agrees() {
    let q = star_query(3);
    let rels = vec![
        edge_rel(&[(1, 2, 0.5), (1, 3, 0.25), (2, 4, 1.0)]),
        edge_rel(&[(1, 5, 0.5), (2, 6, 0.125)]),
        edge_rel(&[(1, 7, 2.0), (1, 8, 0.0625), (2, 9, 0.5)]),
    ];
    let engine = Engine::from_query_bindings(&q, rels.clone());
    let plan = engine.query(q.clone()).explain().unwrap();
    assert!(matches!(plan.route, Route::Acyclic { .. }));

    let got = run_engine(&q, rels.clone(), RankSpec::Sum);
    let want: Vec<(f64, Vec<i64>)> = run_handwired_acyclic::<SumCost>(&q, rels)
        .into_iter()
        .map(|(c, v)| (c.get(), v))
        .collect();
    assert_same_ranked(&got, &want, "star3/sum");
}

#[test]
fn triangle_routes_and_agrees() {
    let q = triangle_query();
    let e = dense_edges(6);
    let rels = vec![e.clone(), e.clone(), e.clone()];
    let engine = Engine::from_query_bindings(&q, rels.clone());
    let plan = engine.query(q.clone()).explain().unwrap();
    assert!(matches!(plan.route, Route::Triangle), "{plan:?}");
    assert!((plan.width - 1.5).abs() < 1e-12);

    for rank in [RankSpec::Sum, RankSpec::Max] {
        let got = run_engine(&q, rels.clone(), rank);
        let mut want: Vec<(f64, Vec<i64>)> = match rank {
            RankSpec::Sum => triangle_ranked::<SumCost>(&rels)
                .map(|a| (a.cost.get(), a.values.iter().map(|v| v.int()).collect()))
                .collect(),
            _ => triangle_ranked::<MaxCost>(&rels)
                .map(|a| (a.cost.get(), a.values.iter().map(|v| v.int()).collect()))
                .collect(),
        };
        want.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut got_sorted = got.clone();
        got_sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        assert!(
            got.windows(2).all(|w| w[0].0 <= w[1].0),
            "triangle/{rank}: not sorted"
        );
        assert_eq!(got_sorted, want, "triangle/{rank}");
        assert!(!got.is_empty(), "triangle/{rank}: instance has answers");
    }
}

#[test]
fn four_cycle_routes_and_agrees() {
    let q = cycle_query(4);
    let e = dense_edges(6);
    let rels = vec![e.clone(), e.clone(), e.clone(), e.clone()];
    let engine = Engine::from_query_bindings(&q, rels.clone());
    let plan = engine.query(q.clone()).explain().unwrap();
    let threshold = match plan.route {
        Route::FourCycle { threshold } => threshold,
        ref r => panic!("expected four-cycle route, got {}", r.label()),
    };
    assert_eq!(threshold, heavy_threshold(e.len()));

    for rank in [RankSpec::Sum, RankSpec::Max] {
        let got = run_engine(&q, rels.clone(), rank);
        let want: Vec<(f64, Vec<i64>)> = match rank {
            RankSpec::Sum => c4_ranked_part::<SumCost>(&rels, threshold, SuccessorKind::Lazy)
                .map(|a| (a.cost.get(), a.values.iter().map(|v| v.int()).collect()))
                .collect(),
            _ => c4_ranked_part::<MaxCost>(&rels, threshold, SuccessorKind::Lazy)
                .map(|a| (a.cost.get(), a.values.iter().map(|v| v.int()).collect()))
                .collect(),
        };
        assert_same_ranked(&got, &want, &format!("c4/{rank}"));
    }
}

#[test]
fn generic_cyclic_routes_and_agrees() {
    // A 5-cycle: cyclic, not a triangle, not a 4-cycle — must take the
    // decomposition route.
    let q = cycle_query(5);
    let e = dense_edges(5);
    let rels: Vec<Relation> = (0..5).map(|_| e.clone()).collect();
    let engine = Engine::from_query_bindings(&q, rels.clone());
    let plan = engine.query(q.clone()).explain().unwrap();
    let decomp = match &plan.route {
        Route::Decomposed { decomp } => decomp.clone(),
        r => panic!("expected decomposed route, got {}", r.label()),
    };
    // The auto decomposition for a 5-variable query is the exact fhw.
    let exact = fhw_exact(&Hypergraph::of_query(&q));
    assert!((plan.width - exact.width).abs() < 1e-9);

    for rank in [RankSpec::Sum, RankSpec::Max] {
        let got = run_engine(&q, rels.clone(), rank);
        let want: Vec<(f64, Vec<i64>)> = match rank {
            RankSpec::Sum => {
                decomposed_ranked_part::<SumCost>(&q, &rels, &decomp, SuccessorKind::Lazy)
                    .map(|a| (a.cost.get(), a.values.iter().map(|v| v.int()).collect()))
                    .collect()
            }
            _ => decomposed_ranked_part::<MaxCost>(&q, &rels, &decomp, SuccessorKind::Lazy)
                .map(|a| (a.cost.get(), a.values.iter().map(|v| v.int()).collect()))
                .collect(),
        };
        assert_same_ranked(&got, &want, &format!("c5/{rank}"));
    }
}

#[test]
fn lex_runs_on_every_cyclic_shape_in_canonical_atom_order() {
    // Lex on cyclic routes serves the materialized answer set with
    // weights serialized in canonical atom order — cross-check the
    // full ranked order against WCO materialization sorted the same
    // way, on every cyclic shape (triangle / C4 / GHD).
    use anyk::core::LexCost;
    for l in [3usize, 4, 5] {
        let q = cycle_query(l);
        let e = dense_edges(4);
        let rels: Vec<Relation> = (0..l).map(|_| e.clone()).collect();
        let mut want: Vec<(Vec<Weight>, Vec<Value>)> =
            anyk::core::cyclic::wco_ranked_materialize::<LexCost>(&q, &rels)
                .into_iter()
                .collect();
        want.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let engine = Engine::from_query_bindings(&q, rels);
        let plan = engine
            .query(q.clone())
            .rank_by(RankSpec::Lex)
            .explain()
            .unwrap();
        assert_eq!(plan.variant, None, "cycle({l}): single-artifact plan");
        let got: Vec<(Vec<Weight>, Vec<Value>)> = engine
            .query(q)
            .rank_by(RankSpec::Lex)
            .plan()
            .expect("lex is served on cyclic queries via materialization")
            .map(|a| (a.cost.lex().expect("lex cost").to_vec(), a.values))
            .collect();
        assert_eq!(got, want, "cycle({l}): lex total order");
    }
}

#[test]
fn prod_ranking_runs_on_all_routes() {
    // Prod is commutative: valid everywhere, including cyclic routes.
    for (label, q, m) in [
        ("path", path_query(2), 2usize),
        ("triangle", triangle_query(), 3),
        ("c4", cycle_query(4), 4),
        ("c5", cycle_query(5), 5),
    ] {
        let e = dense_edges(4);
        let rels: Vec<Relation> = (0..m).map(|_| e.clone()).collect();
        let engine = Engine::from_query_bindings(&q, rels);
        let answers: Vec<_> = engine
            .query(q)
            .rank_by(RankSpec::Prod)
            .plan()
            .unwrap_or_else(|e| panic!("{label}: {e}"))
            .collect();
        assert!(
            answers.windows(2).all(|w| w[0].cost <= w[1].cost),
            "{label}: prod stream sorted"
        );
    }
}

#[test]
fn engine_variants_agree_on_four_cycle() {
    let q = cycle_query(4);
    let e = dense_edges(5);
    let rels: Vec<Relation> = (0..4).map(|_| e.clone()).collect();
    let engine = Engine::from_query_bindings(&q, rels);
    let costs = |variant| -> Vec<f64> {
        engine
            .query(q.clone())
            .with_variant(variant)
            .plan()
            .unwrap()
            .map(|a| a.cost.scalar().unwrap())
            .collect()
    };
    let part = costs(AnyKVariant::Part(SuccessorKind::Lazy));
    let rec = costs(AnyKVariant::Rec);
    assert_eq!(part, rec, "PART and REC agree on cost sequence");
}
