//! Cross-family integration tests: the Part-1 top-k algorithms, the
//! Part-3 any-k engines, and the batch joins must all tell the same
//! story when run on the same workloads.

use anyk::core::{AnyKPart, SuccessorKind, SumCost, TdpInstance};
use anyk::query::cq::path_query;
use anyk::query::gyo::{gyo_reduce, GyoResult};
use anyk::storage::Relation;
use anyk::topk::jstar::{jstar_topk, ChainSpec};
use anyk::topk::lists::{Aggregation, RankedLists};
use anyk::topk::rank_join::{RankJoin, SortedScan};
use anyk::topk::{fagin_topk, nra_topk, threshold_topk};
use anyk::workloads::graphs::{random_edge_relation, WeightDist};
use anyk::workloads::middleware::{anticorrelated_lists, correlated_lists, uniform_lists};

#[test]
fn middleware_algorithms_agree_with_each_other() {
    for (seed, maker) in [
        (1u64, uniform_lists(3, 300, 1)),
        (2, correlated_lists(3, 300, 0.1, 2)),
        (3, anticorrelated_lists(3, 300, 3)),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, (s, l))| (s + i as u64, l))
    {
        let _ = seed;
        for k in [1usize, 5, 25] {
            let mut l1 = RankedLists::new(maker.clone());
            let ta = threshold_topk(&mut l1, k, Aggregation::Sum);
            let mut l2 = RankedLists::new(maker.clone());
            let fa = fagin_topk(&mut l2, k, Aggregation::Sum);
            let mut l3 = RankedLists::new(maker.clone());
            let nra = nra_topk(&mut l3, k, Aggregation::Sum);
            let oracle = l3.oracle_topk(k, Aggregation::Sum);
            // Ties are common (especially anticorrelated, where sums are
            // flat), and any valid top-k under ties is acceptable — so
            // the binding check is on *aggregates*, position-wise.
            for (algo, got) in [("TA", &ta), ("FA", &fa), ("NRA", &nra)] {
                assert_eq!(got.len(), oracle.len(), "{algo} k={k}: cardinality");
                for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
                    assert!(
                        (g.1 - o.1).abs() < 1e-9,
                        "{algo} k={k}: aggregate at rank {i}: {} vs {}",
                        g.1,
                        o.1
                    );
                }
            }
            // And each returned object's aggregate must be its true one.
            for &(obj, agg) in ta.iter().chain(&fa) {
                let truth = Aggregation::Sum.apply(&l3.oracle_scores(obj));
                assert!((agg - truth).abs() < 1e-9, "reported aggregate wrong");
            }
        }
    }
}

/// HRJN, J*, and ANYK-PART on the *same* 2-path workload must emit the
/// same cost sequence.
#[test]
fn rank_join_jstar_and_anyk_agree() {
    for seed in [10u64, 11, 12] {
        let l = random_edge_relation(80, 12, WeightDist::Uniform, None, seed);
        let r = random_edge_relation(80, 12, WeightDist::Uniform, None, seed + 100);
        // HRJN.
        let rj = RankJoin::new(
            SortedScan::new(l.clone()),
            SortedScan::new(r.clone()),
            vec![1],
            vec![0],
        );
        let hrjn: Vec<f64> = rj.map(|t| t.weight).collect();
        // J*.
        let rels: Vec<Relation> = vec![l.clone(), r.clone()];
        let (js, _) = jstar_topk(&rels, &ChainSpec::edge_path(2), usize::MAX);
        // ANYK-PART.
        let q = path_query(2);
        let tree = match gyo_reduce(&q) {
            GyoResult::Acyclic(t) => t,
            _ => unreachable!(),
        };
        let tdp = TdpInstance::<SumCost>::prepare(&q, &tree, vec![l, r]).unwrap();
        let anyk: Vec<f64> = AnyKPart::new(tdp, SuccessorKind::Lazy)
            .map(|a| a.cost.get())
            .collect();

        assert_eq!(hrjn.len(), anyk.len(), "seed {seed}: HRJN cardinality");
        assert_eq!(js.len(), anyk.len(), "seed {seed}: J* cardinality");
        for i in 0..anyk.len() {
            assert!(
                (hrjn[i] - anyk[i]).abs() < 1e-9,
                "seed {seed} rank {i}: HRJN {} vs anyk {}",
                hrjn[i],
                anyk[i]
            );
            assert!(
                (js[i].0 - anyk[i]).abs() < 1e-9,
                "seed {seed} rank {i}: J* {} vs anyk {}",
                js[i].0,
                anyk[i]
            );
        }
    }
}

/// A 3-relation chain: HRJN tree and any-k agree.
#[test]
fn hrjn_tree_matches_anyk_on_3path() {
    let seed = 77u64;
    let r1 = random_edge_relation(50, 8, WeightDist::Uniform, None, seed);
    let r2 = random_edge_relation(50, 8, WeightDist::Uniform, None, seed + 1);
    let r3 = random_edge_relation(50, 8, WeightDist::Uniform, None, seed + 2);
    let lower = RankJoin::new(
        SortedScan::new(r1.clone()),
        SortedScan::new(r2.clone()),
        vec![1],
        vec![0],
    );
    // Lower output: [a, b, b, c]; join position 3 (c) with r3's col 0.
    let upper = RankJoin::new(lower, SortedScan::new(r3.clone()), vec![3], vec![0]);
    let hrjn: Vec<f64> = upper.map(|t| t.weight).collect();

    let q = path_query(3);
    let tree = match gyo_reduce(&q) {
        GyoResult::Acyclic(t) => t,
        _ => unreachable!(),
    };
    let tdp = TdpInstance::<SumCost>::prepare(&q, &tree, vec![r1, r2, r3]).unwrap();
    let anyk: Vec<f64> = AnyKPart::new(tdp, SuccessorKind::Take2)
        .map(|a| a.cost.get())
        .collect();
    assert_eq!(hrjn.len(), anyk.len());
    for (h, a) in hrjn.iter().zip(&anyk) {
        assert!((h - a).abs() < 1e-9, "{h} vs {a}");
    }
}

/// The adversarial instance: HRJN must scan deep, any-k must not read
/// more than the input. (The paper's Part 1 RAM-model critique, as a
/// regression test.)
#[test]
fn adversarial_depth_gap() {
    let n = 200usize;
    let (l, r) = anyk::workloads::adversarial::anticorrelated_pair(n);
    let mut rj = RankJoin::new(
        SortedScan::new(l.clone()),
        SortedScan::new(r.clone()),
        vec![1],
        vec![0],
    );
    let first = rj.next().unwrap();
    assert_eq!(first.weight, n as f64);
    assert!(
        rj.stats().pulled as usize >= n * 3 / 2,
        "HRJN must pull deep: {}",
        rj.stats().pulled
    );
    assert!(
        rj.stats().peak_buffered as usize >= n,
        "buffers ~ full input"
    );
}
