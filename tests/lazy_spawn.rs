//! Laziness regression pins for the serving path: stream spawn must
//! cost work proportional to the answers pulled, never to the input.
//!
//! The assertions use **counting hooks** (stream-shell / successor-
//! order allocation counters on the core enumerators, the deferred-
//! sort state machine on the triangle artifact) rather than wall-clock
//! time, so they are deterministic on any machine:
//!
//! * `AnyKRec` allocates zero group/tuple stream shells at spawn and
//!   only `o(n)` of them for a small-`k` pull (this PR);
//! * `AnyKPart` builds successor orders on first touch (PR 2 — pinned
//!   here so the win cannot silently rot);
//! * the triangle route's prepared artifact defers its `O(r log r)`
//!   sort past any number of partial first-stream pulls.

mod common;

use anyk::prelude::*;
use common::gen::scrambled_edges;
use std::sync::Arc;

/// A path-3 T-DP instance big enough that O(n) spawn work would be
/// unmistakable next to the per-answer counters.
fn big_path_instance() -> Arc<anyk::core::TdpInstance<SumCost>> {
    let q = path_query(3);
    let rels = vec![
        scrambled_edges(8_000, 2_000, 1),
        scrambled_edges(8_000, 2_000, 2),
        scrambled_edges(8_000, 2_000, 3),
    ];
    let tree = match gyo_reduce(&q) {
        GyoResult::Acyclic(t) => t,
        _ => unreachable!(),
    };
    Arc::new(TdpInstance::<SumCost>::prepare(&q, &tree, rels).expect("path instance"))
}

#[test]
fn prepared_rec_stream_spawn_is_lazy() {
    let inst = big_path_instance();
    let n = inst.reduced_input_size();
    assert!(n > 10_000, "instance must be large to be telling (n = {n})");

    let mut rec = AnyKRec::new(Arc::clone(&inst));
    assert_eq!(
        rec.allocated_group_streams() + rec.allocated_tuple_streams(),
        0,
        "spawning a prepared REC stream must allocate no per-tuple state"
    );

    let k = 5;
    for i in 0..k {
        assert!(rec.next().is_some(), "answer {i}");
    }
    let touched = rec.allocated_group_streams() + rec.allocated_tuple_streams();
    assert!(
        touched * 20 < n,
        "k={k} pulls must touch o(n) streams: touched {touched}, n {n}"
    );
}

#[test]
fn prepared_part_stream_spawn_is_lazy_regression_pin() {
    // PR 2 made AnyKPart's successor orders build on first touch; pin
    // it with the same counting-hook so the property cannot rot.
    let inst = big_path_instance();
    let n = inst.reduced_input_size();

    let part = AnyKPart::new(Arc::clone(&inst), SuccessorKind::Lazy);
    assert!(
        part.touched_groups() <= 1,
        "spawn organizes at most the root group, got {}",
        part.touched_groups()
    );

    let k = 5;
    let mut part = part;
    for i in 0..k {
        assert!(part.next().is_some(), "answer {i}");
    }
    let touched = part.touched_groups();
    // Each pop organizes at most one group per later slot.
    assert!(
        touched <= 1 + k * inst.num_slots(),
        "k={k} pulls on {} slots touched {touched} groups",
        inst.num_slots()
    );
    assert!(touched * 20 < n, "touched {touched} vs n {n}");
}

#[test]
fn rec_and_part_lazy_streams_agree_on_the_prefix() {
    // Laziness must not change what is enumerated: both enumerators
    // over one shared instance produce the same cost prefix.
    let inst = big_path_instance();
    let k = 50;
    let rec: Vec<f64> = AnyKRec::new(Arc::clone(&inst))
        .take(k)
        .map(|a| a.cost.get())
        .collect();
    let part: Vec<f64> = AnyKPart::new(Arc::clone(&inst), SuccessorKind::Lazy)
        .take(k)
        .map(|a| a.cost.get())
        .collect();
    assert_eq!(rec.len(), k);
    assert_eq!(rec, part);
}

#[test]
fn triangle_one_shot_topk_never_pays_the_sort() {
    let e = scrambled_edges(400, 30, 7);
    let q = triangle_query();
    let engine = Engine::from_query_bindings(&q, vec![e.clone(), e.clone(), e]);

    // The ad-hoc one-shot path: plan() + top-k. The first stream off
    // the (cached) prepared artifact is the lazy heap.
    let handle = engine.prepare(q.clone(), RankSpec::Sum).expect("prepare");
    assert!(handle.holds_materialized_answers());
    assert_eq!(
        handle.sort_deferred(),
        Some(true),
        "prepare materializes but must not sort"
    );

    let mut s1 = engine.query(q.clone()).plan().expect("plan");
    let top = s1.top_k(3);
    assert_eq!(top.len(), 3);
    assert_eq!(
        handle.sort_deferred(),
        Some(true),
        "a partial top-k pull must not pay the O(r log r) sort"
    );

    // The second stream spawn pays the one-time sort...
    let s2: Vec<_> = engine.query(q.clone()).plan().expect("plan").collect();
    assert_eq!(
        handle.sort_deferred(),
        Some(false),
        "the second stream installs the shared sorted artifact"
    );
    // ...and the interrupted first stream continues in the same order.
    let mut all1: Vec<_> = top;
    all1.extend(s1);
    assert_eq!(
        all1, s2,
        "lazy first stream == sorted cursor, ties included"
    );
}

#[test]
fn non_materialized_routes_report_no_sort_state() {
    let q = path_query(2);
    let engine = Engine::from_query_bindings(
        &q,
        vec![scrambled_edges(100, 10, 3), scrambled_edges(100, 10, 5)],
    );
    let tdp = engine.prepare(q.clone(), RankSpec::Sum).expect("prepare");
    assert!(!tdp.holds_materialized_answers());
    assert_eq!(tdp.sort_deferred(), None);

    // A Batch plan materializes without sorting (deferred like the
    // triangle route).
    let batch = engine
        .query(q)
        .with_variant(AnyKVariant::Batch)
        .prepare()
        .expect("prepare");
    assert!(batch.holds_materialized_answers());
    assert_eq!(batch.sort_deferred(), Some(true));
}

#[test]
fn batch_artifacts_defer_their_sort_on_every_route() {
    // The triangle route's deferred-sort machinery generalizes to the
    // `Batch` artifact of the acyclic, four-cycle, and GHD routes:
    // prepare is materialize-only, a partial first stream never pays
    // the O(r log r) sort, and the second spawn installs the shared
    // sorted artifact without changing any answer.
    let e = scrambled_edges(200, 12, 11);
    let shapes: [(&str, anyk::query::cq::ConjunctiveQuery, usize); 3] = [
        ("acyclic", path_query(2), 2),
        ("four-cycle", cycle_query(4), 4),
        ("decomposed", cycle_query(5), 5),
    ];
    for (route, q, m) in shapes {
        let rels: Vec<Relation> = (0..m).map(|_| e.clone()).collect();
        let engine = Engine::from_query_bindings(&q, rels);
        let handle = engine
            .query(q.clone())
            .with_variant(AnyKVariant::Batch)
            .prepare()
            .expect("prepare");
        assert_eq!(handle.plan().route.label(), route);
        assert!(handle.holds_materialized_answers(), "{route}");
        assert_eq!(
            handle.sort_deferred(),
            Some(true),
            "{route}: batch prepare must materialize without sorting"
        );

        let mut s1 = handle.stream();
        let top = s1.top_k(3);
        assert!(!top.is_empty(), "{route}: instance must have answers");
        assert_eq!(
            handle.sort_deferred(),
            Some(true),
            "{route}: a partial top-k pull must not pay the sort"
        );

        // Second spawn pays the one-time sort; both streams agree,
        // ties included.
        let s2: Vec<_> = handle.stream().collect();
        assert_eq!(
            handle.sort_deferred(),
            Some(false),
            "{route}: the second stream installs the sorted artifact"
        );
        let mut all1 = top;
        all1.extend(s1);
        assert_eq!(all1, s2, "{route}: lazy first stream == sorted cursor");
    }
}
