//! Live appends under concurrent serving: one writer streams INSERT
//! batches into `R1` while eight paging sessions keep querying — over
//! the in-process client and over real sockets on both accept
//! architectures. The service must never leak a cursor, its lifecycle
//! accounting must balance exactly, the write counters must land on
//! the exact batch arithmetic, and plans over untouched relations must
//! keep their cache entries and shared indexes through every append.
//!
//! This suite also runs under ThreadSanitizer in CI (the nightly tsan
//! job), so the thread and batch sizes are deliberately modest.

mod common;

use anyk::prelude::*;
use anyk::serve::{encode_answer, Server, TcpClient, Transport, TransportConfig};
use common::gen::scrambled_edges;

const READERS: usize = 8;
const QUERIES_PER_READER: usize = 6;
const BATCHES: usize = 5;
const BATCH_ROWS: usize = 4;
const PAGE: usize = 4;
const PAGES: usize = 3; // rows pulled per query = PAGE * PAGES

/// The four warm selects: two touch `R1` (the appended relation), two
/// live entirely on `R3 ⋈ R4` and must never be invalidated.
const SELECTS: [&str; 4] = [
    "SELECT R1(a,b), R2(b,c) RANK BY sum LIMIT 4;",
    "SELECT R1(a,b), R2(b,c) RANK BY max LIMIT 4;",
    "SELECT R3(a,b), R4(b,c) RANK BY sum LIMIT 4;",
    "SELECT R3(a,b), R4(b,c) RANK BY min LIMIT 4;",
];
const TOUCHED_PER_APPEND: u64 = 2; // cached plans depending on R1

/// Deterministic writer batches: values land inside the base domain so
/// every batch creates new join partners against `R2`.
fn batch_rows(b: usize) -> Vec<(i64, i64, f64)> {
    (0..BATCH_ROWS)
        .map(|i| {
            let k = (b * BATCH_ROWS + i) as i64;
            (
                (k * 7 + 3) % 9,
                (k * 5 + 1) % 9,
                0.25 + 0.25 * ((k % 3) as f64),
            )
        })
        .collect()
}

fn insert_text(rows: &[(i64, i64, f64)]) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|(u, v, w)| format!("({u},{v},{w})"))
        .collect();
    format!("INSERT INTO R1 VALUES {};", cells.join(","))
}

/// One transport-agnostic protocol client.
enum Client {
    Local(Box<LocalClient>),
    Tcp(TcpClient),
}

impl Client {
    fn send(&mut self, cmd: &str) -> String {
        match self {
            Client::Local(c) => c.send(cmd),
            Client::Tcp(c) => c.send(cmd).expect("tcp round-trip"),
        }
    }
}

#[derive(Clone, Copy)]
enum Mode {
    Local,
    Tcp(std::net::SocketAddr),
}

fn connect(mode: Mode, service: &Service) -> Client {
    match mode {
        Mode::Local => Client::Local(Box::new(LocalClient::new(service))),
        Mode::Tcp(addr) => Client::Tcp(TcpClient::connect(addr).expect("connect")),
    }
}

/// Pull `PAGE * PAGES` rows off one select, then CLOSE the cursor
/// explicitly. Returns the ROW lines in order.
fn pull_pages(client: &mut Client, select: &str) -> Vec<String> {
    let mut rows = Vec::new();
    let mut reply = client.send(select);
    for _ in 0..PAGES {
        let header = reply.lines().next().expect("header").to_string();
        assert!(header.starts_with("OK "), "{select}: {reply}");
        rows.extend(
            reply
                .lines()
                .filter(|l| l.starts_with("ROW "))
                .map(String::from),
        );
        assert!(
            !header.contains("done=true"),
            "fixture joins hold far more than {} answers: {header}",
            PAGE * PAGES
        );
        let cursor = header
            .split("cursor=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .expect("cursor field")
            .to_string();
        if rows.len() >= PAGE * PAGES {
            let closed = client.send(&format!("CLOSE {cursor};"));
            assert!(closed.starts_with("OK closed"), "{closed}");
            break;
        }
        reply = client.send(&format!("NEXT {PAGE} ON {cursor};"));
    }
    assert_eq!(rows.len(), PAGE * PAGES, "{select}");
    rows
}

fn base_relations() -> Vec<Relation> {
    vec![
        scrambled_edges(150, 9, 101),
        scrambled_edges(150, 9, 103),
        scrambled_edges(150, 9, 107),
        scrambled_edges(150, 9, 109),
    ]
}

fn live_service() -> (Service, Vec<Relation>) {
    let rels = base_relations();
    let engine = Engine::from_query_bindings(&path_query(4), rels.clone());
    (Service::new(engine), rels)
}

/// The scenario: warm all four plans, then run 1 writer + 8 readers to
/// completion, then audit every counter the service publishes.
fn run_live_append_scenario(label: &str, service: &Service, mode: Mode, rels: &[Relation]) {
    // Warm every select so all four plans are cache-resident before
    // the first append: from here on, each append invalidates exactly
    // the two R1-dependent plans and refresh-on-append re-prepares
    // them, so the invalidation counter is exact arithmetic.
    let mut warm = connect(mode, service);
    for select in SELECTS {
        pull_pages(&mut warm, select);
    }

    std::thread::scope(|s| {
        let writer = s.spawn(move || {
            let mut client = connect(mode, service);
            for b in 0..BATCHES {
                let reply = client.send(&insert_text(&batch_rows(b)));
                assert_eq!(
                    reply,
                    format!(
                        "OK appended rows={BATCH_ROWS} deltas={} compacted=false\nEND\n",
                        b + 1
                    ),
                    "{label}: batch {b}"
                );
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                s.spawn(move || {
                    let mut client = connect(mode, service);
                    for i in 0..QUERIES_PER_READER {
                        pull_pages(&mut client, SELECTS[(r + i) % SELECTS.len()]);
                    }
                })
            })
            .collect();
        writer.join().expect("writer thread");
        for h in readers {
            h.join().expect("reader thread");
        }
    });

    // Zero leaked cursors, and the lifecycle ledger balances: every
    // cursor opened was explicitly closed — nothing expired, nothing
    // drained silently.
    let stats = service.stats();
    assert_eq!(stats.open_cursors, 0, "{label}: leaked cursors");
    assert_eq!(stats.cursors_expired, 0, "{label}: nothing may expire");
    assert_eq!(
        stats.cursors_opened, stats.cursors_closed,
        "{label}: lifecycle accounting must balance: {stats:?}"
    );

    // Exact query and write arithmetic. INSERTs are not queries.
    let expected_queries = (SELECTS.len() + READERS * QUERIES_PER_READER) as u64;
    assert_eq!(stats.queries, expected_queries, "{label}: SELECT count");
    assert_eq!(stats.appends, BATCHES as u64, "{label}: appends");
    assert_eq!(
        stats.appended_rows,
        (BATCHES * BATCH_ROWS) as u64,
        "{label}: appended rows"
    );
    assert_eq!(
        stats.compactions,
        0,
        "{label}: {} delta rows stay far under the compaction threshold",
        BATCHES * BATCH_ROWS
    );
    assert_eq!(
        stats.append_invalidations,
        BATCHES as u64 * TOUCHED_PER_APPEND,
        "{label}: each append invalidates exactly the two R1 plans"
    );

    // Untouched plans rode through every append: probing them again
    // must hit the resident cache entry and the resident shared index —
    // no new prepare, no index rebuild.
    let before = service.stats();
    let mut probe = connect(mode, service);
    pull_pages(&mut probe, SELECTS[2]);
    pull_pages(&mut probe, SELECTS[3]);
    let after = service.stats();
    assert_eq!(
        after.cache.misses, before.cache.misses,
        "{label}: untouched plans must stay cache-resident"
    );
    assert_eq!(
        after.index.builds, before.index.builds,
        "{label}: untouched shared indexes must not rebuild"
    );

    // Correctness pin: the touched select now serves base ⊎ all five
    // deltas, byte-identical to a fresh single-payload engine's
    // canonical-tie stream through the same encoder.
    let got = pull_pages(&mut probe, SELECTS[0]);
    let mut combined = vec![rels[0].clone()];
    for b in 0..BATCHES {
        combined.push(common::gen::edge_rel(&batch_rows(b)));
    }
    let q = QueryBuilder::new()
        .atom("R1", &["a", "b"])
        .atom("R2", &["b", "c"])
        .build();
    let reference =
        Engine::from_query_bindings(&q, vec![Relation::concat(&combined), rels[1].clone()]);
    let want: Vec<String> = reference
        .prepare(q.clone(), RankSpec::Sum)
        .expect("reference prepare")
        .stream()
        .canonical_ties()
        .take(PAGE * PAGES)
        .map(|a| encode_answer(&a))
        .collect();
    assert_eq!(
        got, want,
        "{label}: post-append pages must be byte-identical to the reference stream"
    );
}

#[test]
fn live_appends_stay_leak_free_in_process() {
    let (service, rels) = live_service();
    run_live_append_scenario("local", &service, Mode::Local, &rels);
}

#[test]
fn live_appends_stay_leak_free_over_tcp_on_both_transports() {
    for transport in [Transport::ThreadPerConn, Transport::EventLoop] {
        let (service, rels) = live_service();
        let mut server = Server::bind_with(
            service.clone(),
            "127.0.0.1:0",
            TransportConfig {
                transport,
                ..TransportConfig::default()
            },
        )
        .expect("bind");
        run_live_append_scenario(
            &format!("{transport:?}"),
            &service,
            Mode::Tcp(server.addr()),
            &rels,
        );
        server.shutdown();
    }
}
