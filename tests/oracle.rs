//! Oracle harness: every planner route × every supported ranking,
//! cross-checked in **full ranked order** against the brute-force
//! nested-loop + sort oracle (`tests/common/oracle.rs`) on small fixed
//! instances.
//!
//! Routes covered: acyclic (path, star, snowflake), triangle (WCO
//! materialization), four-cycle (submodular-width union-of-trees), and
//! decomposed (GHD — via C5). Rankings: **all five everywhere** —
//! Sum/Max/Min/Prod drive the any-k plans, and Lex is served on cyclic
//! routes from the materialized answers under canonical atom order.
//! Any-k variants (PART orders, REC, Batch) are pinned against the
//! same oracle on representative shapes.

mod common;

use anyk::prelude::*;
use common::gen::{edge_rel, scrambled_edges, snowflake_query};
use common::oracle::{
    assert_matches_oracle, brute_force_ranked, check_engine_against_oracle,
    check_write_path_against_oracle, OracleAnswer,
};

/// A dense-ish fixed edge set with dyadic weights and deliberate
/// weight ties (the tie-group comparison must actually bite).
fn fixture_edges() -> Vec<(i64, i64, f64)> {
    vec![
        (1, 2, 0.5),
        (2, 3, 1.0),
        (3, 1, 0.25),
        (2, 1, 2.0),
        (1, 3, 0.125),
        (3, 2, 0.75),
        (3, 4, 0.5),
        (4, 1, 1.5),
        (4, 2, 0.25),
        (2, 4, 1.0),
        (4, 3, 0.5),
        (1, 4, 0.375),
        (1, 1, 0.5),
        (4, 4, 2.5),
    ]
}

fn check_route(q: &anyk::query::cq::ConjunctiveQuery, rels: &[Relation], route: &str) {
    let engine = Engine::from_query_bindings(q, rels.to_vec());
    let plan = engine.query(q.clone()).explain().expect("plannable");
    assert_eq!(plan.route.label(), route, "planner must choose {route}");
    for rank in RankSpec::ALL {
        let got = check_engine_against_oracle(q, rels, rank, &format!("{route} × {rank}"));
        assert!(
            !got.is_empty(),
            "{route} × {rank}: fixture must have answers for the check to bite"
        );
    }
}

#[test]
fn path_matches_oracle_under_every_ranking() {
    let q = path_query(3);
    let rels = vec![
        edge_rel(&fixture_edges()),
        edge_rel(&fixture_edges()[2..]),
        edge_rel(&fixture_edges()[..10]),
    ];
    check_route(&q, &rels, "acyclic");
}

#[test]
fn star_matches_oracle_under_every_ranking() {
    let q = star_query(3);
    let rels = vec![
        edge_rel(&fixture_edges()[..10]),
        edge_rel(&fixture_edges()[3..]),
        edge_rel(&fixture_edges()[..8]),
    ];
    check_route(&q, &rels, "acyclic");
}

#[test]
fn snowflake_matches_oracle_under_every_ranking() {
    let q = snowflake_query();
    let rels = vec![
        edge_rel(&fixture_edges()[..10]),
        edge_rel(&fixture_edges()[2..12]),
        edge_rel(&fixture_edges()[..8]),
        edge_rel(&fixture_edges()[4..]),
        edge_rel(&fixture_edges()[..12]),
    ];
    check_route(&q, &rels, "acyclic");
}

#[test]
fn triangle_matches_oracle_under_every_ranking() {
    let q = triangle_query();
    let e = edge_rel(&fixture_edges());
    check_route(&q, &[e.clone(), e.clone(), e], "triangle");
}

#[test]
fn four_cycle_matches_oracle_under_every_ranking() {
    let q = cycle_query(4);
    let e = edge_rel(&fixture_edges());
    check_route(&q, &[e.clone(), e.clone(), e.clone(), e], "four-cycle");
}

#[test]
fn five_cycle_decomposed_matches_oracle_under_every_ranking() {
    let q = cycle_query(5);
    let e = edge_rel(&fixture_edges());
    check_route(
        &q,
        &[e.clone(), e.clone(), e.clone(), e.clone(), e],
        "decomposed",
    );
}

#[test]
fn every_anyk_variant_matches_the_oracle() {
    // The oracle also pins the variant seam: PART successor orders,
    // REC, and Batch must all reproduce the oracle's total order.
    let variants = [
        AnyKVariant::Part(anyk::core::SuccessorKind::Eager),
        AnyKVariant::Part(anyk::core::SuccessorKind::All),
        AnyKVariant::Part(anyk::core::SuccessorKind::Take2),
        AnyKVariant::Part(anyk::core::SuccessorKind::Lazy),
        AnyKVariant::Part(anyk::core::SuccessorKind::Quick),
        AnyKVariant::Rec,
        AnyKVariant::Batch,
    ];
    // Acyclic shape.
    let q = path_query(3);
    let rels = vec![
        edge_rel(&fixture_edges()),
        edge_rel(&fixture_edges()[1..]),
        edge_rel(&fixture_edges()[..11]),
    ];
    let want = brute_force_ranked(&q, &rels, RankSpec::Sum);
    let engine = Engine::from_query_bindings(&q, rels.clone());
    for v in variants {
        let got: Vec<RankedAnswer> = engine
            .query(q.clone())
            .with_variant(v)
            .plan()
            .expect("acyclic plan")
            .collect();
        common::oracle::assert_matches_oracle(&got, &want, &format!("acyclic × {v:?}"));
    }
    // Cyclic shape (C4): REC and Batch drive the union-of-trees cases.
    let q4 = cycle_query(4);
    let e = edge_rel(&fixture_edges());
    let rels4 = vec![e.clone(), e.clone(), e.clone(), e];
    let want4 = brute_force_ranked(&q4, &rels4, RankSpec::Sum);
    let engine4 = Engine::from_query_bindings(&q4, rels4);
    for v in [AnyKVariant::Rec, AnyKVariant::Batch] {
        let got: Vec<RankedAnswer> = engine4
            .query(q4.clone())
            .with_variant(v)
            .plan()
            .expect("c4 plan")
            .collect();
        common::oracle::assert_matches_oracle(&got, &want4, &format!("four-cycle × {v:?}"));
    }
}

#[test]
fn triangle_first_and_upgraded_streams_both_match_the_oracle() {
    // The lazy-heap first stream and the post-upgrade sorted cursor
    // must both reproduce the oracle order, byte-identically.
    let q = triangle_query();
    let e = edge_rel(&fixture_edges());
    let rels = vec![e.clone(), e.clone(), e];
    let want = brute_force_ranked(&q, &rels, RankSpec::Sum);
    let engine = Engine::from_query_bindings(&q, rels);
    let prepared = engine.prepare(q, RankSpec::Sum).expect("triangle prepare");
    assert_eq!(prepared.sort_deferred(), Some(true));
    let first: Vec<RankedAnswer> = prepared.stream().collect(); // lazy heap, exhausts
    assert_eq!(
        prepared.sort_deferred(),
        Some(false),
        "exhaustion installs the sorted artifact"
    );
    let upgraded: Vec<RankedAnswer> = prepared.stream().collect(); // cursor
    common::oracle::assert_matches_oracle(&first, &want, "triangle lazy first stream");
    assert_eq!(
        first, upgraded,
        "first stream == upgraded cursor, ties included"
    );
}

// ---------------------------------------------------------------------
// The write path: every route × every ranking over a live engine that
// received its data partly through `append()`. The delta-backed union
// must reproduce the oracle over base ⊎ deltas in full ranked order,
// byte-identically to a single-payload engine's canonical stream, and
// compaction must not move a byte (`check_write_path_against_oracle`).
// ---------------------------------------------------------------------

/// All five rankings over one `(q, base, appends)` write-path instance.
fn check_write_path_all_ranks(
    q: &anyk::query::cq::ConjunctiveQuery,
    base: &[Relation],
    appends: &[(usize, Relation)],
    route: &str,
) {
    for rank in RankSpec::ALL {
        check_write_path_against_oracle(q, base, appends, rank, &format!("{route} × {rank}"));
    }
}

#[test]
fn live_appends_match_oracle_on_the_acyclic_path_route() {
    // The appended chain 9→50→51→2 exists only across three different
    // delta batches — one per atom — so any union term that misses a
    // delta×delta×delta combination drops it. The second batch to R1
    // joins existing base rows instead (both flavors must land).
    let q = path_query(3);
    let base = vec![
        edge_rel(&fixture_edges()),
        edge_rel(&fixture_edges()[2..]),
        edge_rel(&fixture_edges()[..10]),
    ];
    let appends = vec![
        (0, edge_rel(&[(9, 50, 0.5), (2, 2, 0.375)])),
        (1, edge_rel(&[(50, 51, 0.25), (2, 3, 0.25)])),
        (2, edge_rel(&[(51, 2, 0.125)])),
        (0, edge_rel(&[(1, 50, 1.0)])),
    ];
    check_write_path_all_ranks(&q, &base, &appends, "acyclic-path live");
}

#[test]
fn live_appends_match_oracle_on_the_acyclic_star_route() {
    // A brand-new center (50) appears only in the deltas of all three
    // arms, plus an arm batch extending an existing center.
    let q = star_query(3);
    let base = vec![
        edge_rel(&fixture_edges()[..10]),
        edge_rel(&fixture_edges()[3..]),
        edge_rel(&fixture_edges()[..8]),
    ];
    let appends = vec![
        (0, edge_rel(&[(50, 1, 0.5)])),
        (1, edge_rel(&[(50, 2, 0.25), (1, 9, 0.75)])),
        (2, edge_rel(&[(50, 3, 0.125), (2, 9, 0.5)])),
    ];
    check_write_path_all_ranks(&q, &base, &appends, "acyclic-star live");
}

#[test]
fn live_appends_match_oracle_on_the_triangle_route() {
    // A triangle 50→51→52→50 closed entirely by deltas, plus batches
    // that close new triangles against base edges.
    let q = triangle_query();
    let e = edge_rel(&fixture_edges());
    let base = vec![e.clone(), e.clone(), e];
    let appends = vec![
        (0, edge_rel(&[(50, 51, 0.5), (1, 3, 0.25)])),
        (1, edge_rel(&[(51, 52, 0.25)])),
        (2, edge_rel(&[(52, 50, 0.125), (2, 1, 0.5)])),
    ];
    check_write_path_all_ranks(&q, &base, &appends, "triangle live");
}

#[test]
fn live_appends_match_oracle_on_the_four_cycle_route() {
    let q = cycle_query(4);
    let e = edge_rel(&fixture_edges());
    let base = vec![e.clone(), e.clone(), e.clone(), e];
    let appends = vec![
        (0, edge_rel(&[(50, 51, 0.5)])),
        (1, edge_rel(&[(51, 52, 0.25), (3, 3, 0.75)])),
        (2, edge_rel(&[(52, 53, 0.125)])),
        (3, edge_rel(&[(53, 50, 0.5), (3, 2, 0.25)])),
    ];
    check_write_path_all_ranks(&q, &base, &appends, "four-cycle live");
}

#[test]
fn live_appends_match_oracle_on_the_decomposed_route() {
    // Appended values are kept distinct from every base tuple: the GHD
    // route collapses duplicate-valued rows to their lightest weight by
    // design (bag materialization is set-shaped), so a delta that
    // duplicates a base tuple's values would change multiplicity across
    // compaction. The other routes preserve multiplicity and their
    // fixtures above exercise duplicated values deliberately.
    let q = cycle_query(5);
    let e = edge_rel(&fixture_edges());
    let base = vec![e.clone(), e.clone(), e.clone(), e.clone(), e];
    let appends = vec![
        (0, edge_rel(&[(50, 51, 0.5)])),
        (1, edge_rel(&[(51, 52, 0.25)])),
        (2, edge_rel(&[(52, 53, 0.125)])),
        (3, edge_rel(&[(53, 54, 0.5)])),
        (4, edge_rel(&[(54, 50, 0.25), (2, 2, 0.375)])),
    ];
    check_write_path_all_ranks(&q, &base, &appends, "decomposed live");
}

#[test]
fn live_appends_with_all_ties_weights_stay_canonical() {
    // Adversarial tie fixture on the write path: every tuple — base
    // and delta alike — weighs the same, so the whole output is ONE
    // cost-tie group and the byte-identity assertions are decided
    // entirely by the delta union's cross-source tie-break.
    let flat: Vec<(i64, i64, f64)> = fixture_edges()
        .iter()
        .map(|&(a, b, _)| (a, b, 1.0))
        .collect();
    let flat_batch =
        |rows: &[(i64, i64)]| edge_rel(&rows.iter().map(|&(a, b)| (a, b, 1.0)).collect::<Vec<_>>());
    let e = edge_rel(&flat);

    let q2 = path_query(2);
    let appends2 = vec![
        (0, flat_batch(&[(9, 1), (1, 2)])),
        (1, flat_batch(&[(2, 9), (9, 9)])),
    ];
    check_write_path_all_ranks(
        &q2,
        &[e.clone(), e.clone()],
        &appends2,
        "all-ties path live",
    );

    let q3 = triangle_query();
    let appends3 = vec![
        (0, flat_batch(&[(9, 1)])),
        (1, flat_batch(&[(1, 2)])),
        (2, flat_batch(&[(2, 9)])),
    ];
    check_write_path_all_ranks(
        &q3,
        &[e.clone(), e.clone(), e],
        &appends3,
        "all-ties triangle live",
    );
}

#[test]
fn randomized_append_schedules_match_oracle_through_mid_schedule_compaction() {
    // An xorshift-driven schedule over a 3-path: after every batch the
    // delta-backed stream is re-checked against the oracle, and an
    // explicit mid-schedule `compact()` must not disturb either the
    // answers or the batches that keep arriving afterwards.
    let q = path_query(3);
    let base = vec![
        scrambled_edges(30, 6, 101),
        scrambled_edges(30, 6, 103),
        scrambled_edges(30, 6, 107),
    ];
    let engine = Engine::from_query_bindings(&q, base.clone());
    let mut combined = base;
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for round in 0..6 {
        let atom = (step() % 3) as usize;
        // Domain 8 > the base's 6: some appended values are brand-new
        // join partners only other deltas can complete.
        let batch = scrambled_edges(2 + step() % 4, 8, step() | 1);
        engine
            .append(&q.atom(atom).relation, batch.clone())
            .unwrap_or_else(|e| panic!("round {round}: append: {e}"));
        combined[atom] = Relation::concat(&[combined[atom].clone(), batch]);
        if round == 3 {
            engine
                .compact(&q.atom(atom).relation)
                .unwrap_or_else(|e| panic!("round {round}: compact: {e}"));
        }
        for rank in [RankSpec::Sum, RankSpec::Lex] {
            let want = brute_force_ranked(&q, &combined, rank);
            let got: Vec<RankedAnswer> = engine
                .prepare(q.clone(), rank)
                .unwrap_or_else(|e| panic!("round {round} × {rank}: prepare: {e}"))
                .stream()
                .collect();
            assert_matches_oracle(&got, &want, &format!("round {round} × {rank}"));
        }
    }
}

// ---------------------------------------------------------------------
// Sharded serving: the scatter/merge stream must be indistinguishable
// from a single engine — not just the same multiset, the same *bytes*.
// The merge canonicalizes cost-ties by value order, so the comparison
// baseline is the single engine's stream under `canonical_ties()`,
// which coincides with the oracle's `(cost, values)` total order.
// ---------------------------------------------------------------------

/// Positional (not tie-group) equality against the oracle: the
/// canonical streams pin ties to value order, so every rank must
/// match exactly.
fn assert_exact_oracle_order(got: &[RankedAnswer], want: &[OracleAnswer], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: cardinality");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.cost, w.0, "{label}: cost at rank {i}");
        assert_eq!(g.values, w.1, "{label}: values at rank {i}");
    }
}

/// Sharded-vs-single byte-identity for one `(q, rels)` instance across
/// every ranking and `shards` ∈ {2, 3}.
fn check_sharded_matches_single(
    q: &anyk::query::cq::ConjunctiveQuery,
    rels: &[Relation],
    route: &str,
) {
    for shards in [2usize, 3] {
        let sharded = ShardedEngine::try_from_query_bindings(q, rels.to_vec(), shards)
            .unwrap_or_else(|e| panic!("{route}: sharded build: {e}"));
        let single = Engine::from_query_bindings(q, rels.to_vec());
        for rank in RankSpec::ALL {
            let label = format!("{route} × {rank} × {shards} shard(s)");
            let want = brute_force_ranked(q, rels, rank);
            let merged: Vec<RankedAnswer> = sharded
                .stream(q, rank)
                .unwrap_or_else(|e| panic!("{label}: sharded stream: {e}"))
                .collect();
            let canonical: Vec<RankedAnswer> = single
                .query(q.clone())
                .rank_by(rank)
                .plan()
                .unwrap_or_else(|e| panic!("{label}: single plan: {e}"))
                .canonical_ties()
                .collect();
            assert_eq!(
                merged, canonical,
                "{label}: merged stream must be byte-identical to the single engine"
            );
            assert_exact_oracle_order(&merged, &want, &label);
        }
    }
}

#[test]
fn sharded_path_is_byte_identical_to_single_engine() {
    let q = path_query(3);
    let rels = vec![
        edge_rel(&fixture_edges()),
        edge_rel(&fixture_edges()[2..]),
        edge_rel(&fixture_edges()[..10]),
    ];
    check_sharded_matches_single(&q, &rels, "acyclic-path");
}

#[test]
fn sharded_star_is_byte_identical_to_single_engine() {
    let q = star_query(3);
    let rels = vec![
        edge_rel(&fixture_edges()[..10]),
        edge_rel(&fixture_edges()[3..]),
        edge_rel(&fixture_edges()[..8]),
    ];
    check_sharded_matches_single(&q, &rels, "acyclic-star");
}

#[test]
fn sharded_triangle_is_byte_identical_to_single_engine() {
    let q = triangle_query();
    let e = edge_rel(&fixture_edges());
    check_sharded_matches_single(&q, &[e.clone(), e.clone(), e], "triangle");
}

#[test]
fn sharded_four_cycle_is_byte_identical_to_single_engine() {
    let q = cycle_query(4);
    let e = edge_rel(&fixture_edges());
    check_sharded_matches_single(&q, &[e.clone(), e.clone(), e.clone(), e], "four-cycle");
}

#[test]
fn sharded_five_cycle_is_byte_identical_to_single_engine() {
    let q = cycle_query(5);
    let e = edge_rel(&fixture_edges());
    check_sharded_matches_single(
        &q,
        &[e.clone(), e.clone(), e.clone(), e.clone(), e],
        "decomposed",
    );
}

#[test]
fn sharded_all_ties_relation_is_partition_invariant() {
    // Adversarial tie fixture: every tuple weighs the same, so the
    // whole output is ONE cost-tie group and the merge order is
    // decided *entirely* by the cross-shard tie-break. Any
    // nondeterminism — seeded by which shard owns which row — would
    // show up here as a permutation.
    let flat: Vec<(i64, i64, f64)> = fixture_edges()
        .iter()
        .map(|&(a, b, _)| (a, b, 1.0))
        .collect();
    let e = edge_rel(&flat);
    let q3 = triangle_query();
    check_sharded_matches_single(&q3, &[e.clone(), e.clone(), e.clone()], "all-ties-triangle");
    let q = path_query(2);
    check_sharded_matches_single(&q, &[e.clone(), e.clone()], "all-ties-path");
    // Degenerate shard counts on the same fixture: more shards than
    // distinct pivot rows must still merge to the identical bytes.
    for shards in [5usize, 16] {
        let sharded =
            ShardedEngine::try_from_query_bindings(&q, vec![e.clone(), e.clone()], shards)
                .expect("sharded build");
        let merged: Vec<RankedAnswer> =
            sharded.stream(&q, RankSpec::Sum).expect("stream").collect();
        let want = brute_force_ranked(&q, &[e.clone(), e.clone()], RankSpec::Sum);
        assert_exact_oracle_order(&merged, &want, &format!("all-ties-path × {shards} shards"));
    }
}

#[test]
fn sharded_invalidation_is_coherent_with_mid_stream_snapshots() {
    // Cross-shard coherent invalidation: a register() while merged
    // streams are open must (a) leave those streams on their original
    // snapshot — ties included — and (b) make every *new* stream see
    // the update on every shard, never a torn mix of old and new
    // fragments.
    let q = path_query(2);
    let old_edges = fixture_edges();
    let new_edges: Vec<(i64, i64, f64)> = old_edges
        .iter()
        .skip(2)
        .map(|&(a, b, w)| (a, b, w * 3.0 + 0.5))
        .collect();
    let old_rels = vec![edge_rel(&old_edges), edge_rel(&old_edges[..10])];
    let new_rels = vec![edge_rel(&new_edges), edge_rel(&old_edges[..10])];

    let sharded = ShardedEngine::try_from_query_bindings(&q, old_rels.clone(), 3).expect("sharded");
    let want_old = brute_force_ranked(&q, &old_rels, RankSpec::Sum);
    let want_new = brute_force_ranked(&q, &new_rels, RankSpec::Sum);
    let epoch_before = sharded.epoch();

    // Several merged streams open *before* the update, drained on
    // their own threads *while* the update lands.
    let open: Vec<RankedStream> = (0..4)
        .map(|_| sharded.stream(&q, RankSpec::Sum).expect("stream"))
        .collect();
    std::thread::scope(|s| {
        for (i, mut stream) in open.into_iter().enumerate() {
            let want_old = &want_old;
            s.spawn(move || {
                // Pull one answer up front so the cursor is mid-page
                // when the update arrives, then drain the rest.
                let mut got = vec![stream.next().expect("nonempty")];
                got.extend(stream);
                assert_exact_oracle_order(
                    &got,
                    want_old,
                    &format!("open stream {i} keeps its snapshot"),
                );
            });
        }
        let sharded = &sharded;
        s.spawn(move || {
            sharded
                .register("R1", edge_rel(&new_edges))
                .expect("register during open streams");
        });
    });

    assert!(sharded.epoch() > epoch_before, "update bumps the epoch");
    let fresh: Vec<RankedAnswer> = sharded.stream(&q, RankSpec::Sum).expect("stream").collect();
    assert_exact_oracle_order(&fresh, &want_new, "post-update stream sees the new data");
}
