//! Oracle harness: every planner route × every supported ranking,
//! cross-checked in **full ranked order** against the brute-force
//! nested-loop + sort oracle (`tests/common/oracle.rs`) on small fixed
//! instances.
//!
//! Routes covered: acyclic (path, star, snowflake), triangle (WCO
//! materialization), four-cycle (submodular-width union-of-trees), and
//! decomposed (GHD — via C5). Rankings: **all five everywhere** —
//! Sum/Max/Min/Prod drive the any-k plans, and Lex is served on cyclic
//! routes from the materialized answers under canonical atom order.
//! Any-k variants (PART orders, REC, Batch) are pinned against the
//! same oracle on representative shapes.

mod common;

use anyk::prelude::*;
use common::gen::{edge_rel, snowflake_query};
use common::oracle::{brute_force_ranked, check_engine_against_oracle};

/// A dense-ish fixed edge set with dyadic weights and deliberate
/// weight ties (the tie-group comparison must actually bite).
fn fixture_edges() -> Vec<(i64, i64, f64)> {
    vec![
        (1, 2, 0.5),
        (2, 3, 1.0),
        (3, 1, 0.25),
        (2, 1, 2.0),
        (1, 3, 0.125),
        (3, 2, 0.75),
        (3, 4, 0.5),
        (4, 1, 1.5),
        (4, 2, 0.25),
        (2, 4, 1.0),
        (4, 3, 0.5),
        (1, 4, 0.375),
        (1, 1, 0.5),
        (4, 4, 2.5),
    ]
}

fn check_route(q: &anyk::query::cq::ConjunctiveQuery, rels: &[Relation], route: &str) {
    let engine = Engine::from_query_bindings(q, rels.to_vec());
    let plan = engine.query(q.clone()).explain().expect("plannable");
    assert_eq!(plan.route.label(), route, "planner must choose {route}");
    for rank in RankSpec::ALL {
        let got = check_engine_against_oracle(q, rels, rank, &format!("{route} × {rank}"));
        assert!(
            !got.is_empty(),
            "{route} × {rank}: fixture must have answers for the check to bite"
        );
    }
}

#[test]
fn path_matches_oracle_under_every_ranking() {
    let q = path_query(3);
    let rels = vec![
        edge_rel(&fixture_edges()),
        edge_rel(&fixture_edges()[2..]),
        edge_rel(&fixture_edges()[..10]),
    ];
    check_route(&q, &rels, "acyclic");
}

#[test]
fn star_matches_oracle_under_every_ranking() {
    let q = star_query(3);
    let rels = vec![
        edge_rel(&fixture_edges()[..10]),
        edge_rel(&fixture_edges()[3..]),
        edge_rel(&fixture_edges()[..8]),
    ];
    check_route(&q, &rels, "acyclic");
}

#[test]
fn snowflake_matches_oracle_under_every_ranking() {
    let q = snowflake_query();
    let rels = vec![
        edge_rel(&fixture_edges()[..10]),
        edge_rel(&fixture_edges()[2..12]),
        edge_rel(&fixture_edges()[..8]),
        edge_rel(&fixture_edges()[4..]),
        edge_rel(&fixture_edges()[..12]),
    ];
    check_route(&q, &rels, "acyclic");
}

#[test]
fn triangle_matches_oracle_under_every_ranking() {
    let q = triangle_query();
    let e = edge_rel(&fixture_edges());
    check_route(&q, &[e.clone(), e.clone(), e], "triangle");
}

#[test]
fn four_cycle_matches_oracle_under_every_ranking() {
    let q = cycle_query(4);
    let e = edge_rel(&fixture_edges());
    check_route(&q, &[e.clone(), e.clone(), e.clone(), e], "four-cycle");
}

#[test]
fn five_cycle_decomposed_matches_oracle_under_every_ranking() {
    let q = cycle_query(5);
    let e = edge_rel(&fixture_edges());
    check_route(
        &q,
        &[e.clone(), e.clone(), e.clone(), e.clone(), e],
        "decomposed",
    );
}

#[test]
fn every_anyk_variant_matches_the_oracle() {
    // The oracle also pins the variant seam: PART successor orders,
    // REC, and Batch must all reproduce the oracle's total order.
    let variants = [
        AnyKVariant::Part(anyk::core::SuccessorKind::Eager),
        AnyKVariant::Part(anyk::core::SuccessorKind::All),
        AnyKVariant::Part(anyk::core::SuccessorKind::Take2),
        AnyKVariant::Part(anyk::core::SuccessorKind::Lazy),
        AnyKVariant::Part(anyk::core::SuccessorKind::Quick),
        AnyKVariant::Rec,
        AnyKVariant::Batch,
    ];
    // Acyclic shape.
    let q = path_query(3);
    let rels = vec![
        edge_rel(&fixture_edges()),
        edge_rel(&fixture_edges()[1..]),
        edge_rel(&fixture_edges()[..11]),
    ];
    let want = brute_force_ranked(&q, &rels, RankSpec::Sum);
    let engine = Engine::from_query_bindings(&q, rels.clone());
    for v in variants {
        let got: Vec<RankedAnswer> = engine
            .query(q.clone())
            .with_variant(v)
            .plan()
            .expect("acyclic plan")
            .collect();
        common::oracle::assert_matches_oracle(&got, &want, &format!("acyclic × {v:?}"));
    }
    // Cyclic shape (C4): REC and Batch drive the union-of-trees cases.
    let q4 = cycle_query(4);
    let e = edge_rel(&fixture_edges());
    let rels4 = vec![e.clone(), e.clone(), e.clone(), e];
    let want4 = brute_force_ranked(&q4, &rels4, RankSpec::Sum);
    let engine4 = Engine::from_query_bindings(&q4, rels4);
    for v in [AnyKVariant::Rec, AnyKVariant::Batch] {
        let got: Vec<RankedAnswer> = engine4
            .query(q4.clone())
            .with_variant(v)
            .plan()
            .expect("c4 plan")
            .collect();
        common::oracle::assert_matches_oracle(&got, &want4, &format!("four-cycle × {v:?}"));
    }
}

#[test]
fn triangle_first_and_upgraded_streams_both_match_the_oracle() {
    // The lazy-heap first stream and the post-upgrade sorted cursor
    // must both reproduce the oracle order, byte-identically.
    let q = triangle_query();
    let e = edge_rel(&fixture_edges());
    let rels = vec![e.clone(), e.clone(), e];
    let want = brute_force_ranked(&q, &rels, RankSpec::Sum);
    let engine = Engine::from_query_bindings(&q, rels);
    let prepared = engine.prepare(q, RankSpec::Sum).expect("triangle prepare");
    assert_eq!(prepared.sort_deferred(), Some(true));
    let first: Vec<RankedAnswer> = prepared.stream().collect(); // lazy heap, exhausts
    assert_eq!(
        prepared.sort_deferred(),
        Some(false),
        "exhaustion installs the sorted artifact"
    );
    let upgraded: Vec<RankedAnswer> = prepared.stream().collect(); // cursor
    common::oracle::assert_matches_oracle(&first, &want, "triangle lazy first stream");
    assert_eq!(
        first, upgraded,
        "first stream == upgraded cursor, ties included"
    );
}
