//! Property-based end-to-end tests: random relations, random shapes,
//! random weights — every engine must produce a sorted stream equal to
//! the batch oracle.

use anyk::core::{AnyKPart, AnyKRec, BatchSorted, SuccessorKind, SumCost, TdpInstance};
use anyk::join::nested_loop::nested_loop_join;
use anyk::query::cq::{path_query, star_query, ConjunctiveQuery};
use anyk::query::gyo::{gyo_reduce, GyoResult};
use anyk::query::join_tree::JoinTree;
use anyk::storage::{Relation, RelationBuilder, Schema};
use proptest::prelude::*;

/// Random binary relation over a small domain with dyadic weights
/// (exact float arithmetic keeps cost comparisons bitwise).
fn arb_relation(max_rows: usize, domain: i64) -> impl Strategy<Value = Relation> {
    prop::collection::vec((0..domain, 0..domain, 0i32..64), 1..=max_rows).prop_map(|rows| {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for (x, y, w) in rows {
            b.push_ints(&[x, y], w as f64 / 4.0);
        }
        b.finish()
    })
}

fn tree_of(q: &ConjunctiveQuery) -> JoinTree {
    match gyo_reduce(q) {
        GyoResult::Acyclic(t) => t,
        _ => panic!("acyclic expected"),
    }
}

fn check_all_engines(q: &ConjunctiveQuery, tree: &JoinTree, rels: Vec<Relation>) {
    let oracle: Vec<(f64, Vec<i64>)> = BatchSorted::<SumCost>::new(q, tree, rels.clone())
        .map(|a| (a.cost.get(), a.values.iter().map(|v| v.int()).collect()))
        .collect();
    for kind in SuccessorKind::ALL_KINDS {
        let inst = TdpInstance::<SumCost>::prepare(q, tree, rels.clone()).unwrap();
        let got: Vec<(f64, Vec<i64>)> = AnyKPart::new(inst, kind)
            .map(|a| (a.cost.get(), a.values.iter().map(|v| v.int()).collect()))
            .collect();
        assert_eq!(got.len(), oracle.len(), "{kind:?} cardinality");
        for (i, ((gc, _), (oc, _))) in got.iter().zip(&oracle).enumerate() {
            assert_eq!(gc, oc, "{kind:?} cost at {i}");
        }
        let mut gv: Vec<_> = got.into_iter().map(|g| g.1).collect();
        let mut ov: Vec<_> = oracle.iter().map(|o| o.1.clone()).collect();
        gv.sort();
        ov.sort();
        assert_eq!(gv, ov, "{kind:?} multiset");
    }
    let inst = TdpInstance::<SumCost>::prepare(q, tree, rels.clone()).unwrap();
    let rec: Vec<f64> = AnyKRec::new(inst).map(|a| a.cost.get()).collect();
    assert_eq!(rec.len(), oracle.len(), "rec cardinality");
    for (i, (gc, (oc, _))) in rec.iter().zip(&oracle).enumerate() {
        assert_eq!(gc, oc, "rec cost at {i}");
    }
    // Nested-loop cross-check on cardinality (cheap guard against a
    // wrong batch oracle).
    let nl = nested_loop_join(q, &rels);
    assert_eq!(nl.len(), oracle.len(), "nested-loop cardinality");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn path2_engines_agree(
        r1 in arb_relation(20, 5),
        r2 in arb_relation(20, 5),
    ) {
        let q = path_query(2);
        let tree = tree_of(&q);
        check_all_engines(&q, &tree, vec![r1, r2]);
    }

    #[test]
    fn path3_engines_agree(
        r1 in arb_relation(12, 4),
        r2 in arb_relation(12, 4),
        r3 in arb_relation(12, 4),
    ) {
        let q = path_query(3);
        let tree = tree_of(&q);
        check_all_engines(&q, &tree, vec![r1, r2, r3]);
    }

    #[test]
    fn star3_engines_agree(
        r1 in arb_relation(10, 4),
        r2 in arb_relation(10, 4),
        r3 in arb_relation(10, 4),
    ) {
        let q = star_query(3);
        let tree = tree_of(&q);
        check_all_engines(&q, &tree, vec![r1, r2, r3]);
    }

    #[test]
    fn self_join_path_engines_agree(r in arb_relation(15, 4)) {
        // Path with the same relation at every atom (graph pattern).
        let q = path_query(3);
        let tree = tree_of(&q);
        check_all_engines(&q, &tree, vec![r.clone(), r.clone(), r]);
    }
}
