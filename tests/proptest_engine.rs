//! Property tests for the planner-routed `Engine`.
//!
//! Acyclic: on random instances the engine must produce exactly the
//! stream the `BatchSorted` oracle produces — same cost sequence, same
//! answer multiset — for every runtime ranking defined there.
//!
//! Cyclic: on random triangle and 4-cycle instances, prepared-then-
//! stream == ad-hoc plan == the brute-force nested-loop oracle
//! (`tests/common/oracle.rs`), and random interleaved multi-cursor
//! pulls agree with a single cursor.
//!
//! Instance generation lives in `tests/common/gen.rs` (shared with the
//! oracle and concurrency suites); case counts rise via
//! `ANYK_PROPTEST_CASES` in CI.

mod common;

use anyk::core::{BatchSorted, LexCost, MaxCost, RankingFunction, SumCost};
use anyk::prelude::*;
use anyk::query::cq::ConjunctiveQuery;
use common::gen::{arb_relation, cases_from_env, shaped_acyclic_query};
use common::oracle::{assert_matches_oracle, brute_force_ranked, check_prepared_adhoc_oracle};
use proptest::prelude::*;

fn oracle<R: RankingFunction>(
    q: &ConjunctiveQuery,
    rels: Vec<Relation>,
) -> Vec<(R::Cost, Vec<i64>)> {
    let tree = match gyo_reduce(q) {
        GyoResult::Acyclic(t) => t,
        _ => panic!("acyclic expected"),
    };
    BatchSorted::<R>::new(q, &tree, rels)
        .map(|a| (a.cost, a.values.iter().map(|v| v.int()).collect()))
        .collect()
}

fn check_scalar_rank(q: &ConjunctiveQuery, rels: Vec<Relation>, rank: RankSpec) {
    let want: Vec<(Weight, Vec<i64>)> = match rank {
        RankSpec::Sum => oracle::<SumCost>(q, rels.clone()),
        RankSpec::Max => oracle::<MaxCost>(q, rels.clone()),
        _ => unreachable!("test covers Sum and Max"),
    };
    let engine = Engine::from_query_bindings(q, rels);
    let got: Vec<(f64, Vec<i64>)> = engine
        .query(q.clone())
        .rank_by(rank)
        .plan()
        .expect("acyclic plan")
        .map(|a| (a.cost.scalar().expect("scalar"), a.ints()))
        .collect();
    assert_eq!(got.len(), want.len(), "{rank}: cardinality");
    for (i, ((gc, _), (wc, _))) in got.iter().zip(&want).enumerate() {
        assert_eq!(*gc, wc.get(), "{rank}: cost at rank {i}");
    }
    let mut gv: Vec<_> = got.into_iter().map(|g| g.1).collect();
    let mut wv: Vec<_> = want.into_iter().map(|w| w.1).collect();
    gv.sort();
    wv.sort();
    assert_eq!(gv, wv, "{rank}: multiset");
}

fn check_lex(q: &ConjunctiveQuery, rels: Vec<Relation>) {
    let want = oracle::<LexCost>(q, rels.clone());
    let engine = Engine::from_query_bindings(q, rels);
    let got: Vec<(Vec<Weight>, Vec<i64>)> = engine
        .query(q.clone())
        .rank_by(RankSpec::Lex)
        .plan()
        .expect("acyclic plan")
        .map(|a| (a.cost.lex().expect("lex").to_vec(), a.ints()))
        .collect();
    assert_eq!(got.len(), want.len(), "lex: cardinality");
    for (i, ((gc, _), (wc, _))) in got.iter().zip(&want).enumerate() {
        assert_eq!(gc, wc, "lex: cost at rank {i}");
    }
    let mut gv: Vec<_> = got.into_iter().map(|g| g.1).collect();
    let mut wv: Vec<_> = want.into_iter().map(|w| w.1).collect();
    gv.sort();
    wv.sort();
    assert_eq!(gv, wv, "lex: multiset");
}

proptest! {
    #![proptest_config(cases_from_env(24))]

    /// Engine == BatchSorted on random 2-paths, for runtime Sum/Max/Lex.
    #[test]
    fn path2_engine_matches_batch(
        r1 in arb_relation(20, 5),
        r2 in arb_relation(20, 5),
    ) {
        let q = path_query(2);
        let rels = vec![r1, r2];
        check_scalar_rank(&q, rels.clone(), RankSpec::Sum);
        check_scalar_rank(&q, rels.clone(), RankSpec::Max);
        check_lex(&q, rels);
    }

    /// Engine == BatchSorted on random 3-paths.
    #[test]
    fn path3_engine_matches_batch(
        r1 in arb_relation(12, 4),
        r2 in arb_relation(12, 4),
        r3 in arb_relation(12, 4),
    ) {
        let q = path_query(3);
        let rels = vec![r1, r2, r3];
        check_scalar_rank(&q, rels.clone(), RankSpec::Sum);
        check_lex(&q, rels);
    }

    /// Engine == BatchSorted on random 3-stars.
    #[test]
    fn star3_engine_matches_batch(
        r1 in arb_relation(10, 4),
        r2 in arb_relation(10, 4),
        r3 in arb_relation(10, 4),
    ) {
        let q = star_query(3);
        let rels = vec![r1, r2, r3];
        check_scalar_rank(&q, rels.clone(), RankSpec::Sum);
        check_scalar_rank(&q, rels, RankSpec::Max);
    }

    /// Self-join: one relation at every atom of a 3-path.
    #[test]
    fn self_join_engine_matches_batch(r in arb_relation(15, 4)) {
        let q = path_query(3);
        let rels = vec![r.clone(), r.clone(), r];
        check_scalar_rank(&q, rels, RankSpec::Sum);
    }

    /// Prepare-once/stream-many equals ad-hoc `plan()` on random
    /// acyclic queries (random shape, size, and data), for every
    /// ranking defined there — and repeated streams of one prepared
    /// query are identical.
    #[test]
    fn prepared_then_stream_equals_adhoc_plan(
        star in 0usize..2,
        n in 2usize..4,
        rels in prop::collection::vec(arb_relation(12, 4), 3),
    ) {
        let q = shaped_acyclic_query(star, n);
        let rels = rels[..n].to_vec();
        for rank in [RankSpec::Sum, RankSpec::Max, RankSpec::Lex] {
            // Separate engines so the ad-hoc run cannot share the
            // prepared engine's cache — the equality is end-to-end.
            let adhoc_engine = Engine::from_query_bindings(&q, rels.clone());
            let adhoc: Vec<_> = adhoc_engine
                .query(q.clone())
                .rank_by(rank)
                .plan()
                .expect("acyclic plan")
                .collect();
            let serve_engine = Engine::from_query_bindings(&q, rels.clone());
            let prepared = serve_engine
                .prepare(q.clone(), rank)
                .expect("acyclic prepare");
            let s1: Vec<_> = prepared.stream().collect();
            let s2: Vec<_> = prepared.stream().collect();
            assert_eq!(s1, adhoc, "{rank}: prepared stream == ad-hoc plan");
            assert_eq!(s2, adhoc, "{rank}: second stream replays identically");
        }
    }

    /// Random triangle instances: prepared-then-stream == ad-hoc plan
    /// == brute-force oracle order, under Sum and Max.
    #[test]
    fn triangle_engine_matches_oracle(
        r1 in arb_relation(12, 5),
        r2 in arb_relation(12, 5),
        r3 in arb_relation(12, 5),
    ) {
        let q = triangle_query();
        let rels = vec![r1, r2, r3];
        for rank in [RankSpec::Sum, RankSpec::Max] {
            check_prepared_adhoc_oracle(&q, &rels, rank);
        }
    }

    /// Random 4-cycle instances (self-join flavored, like the paper's
    /// "k lightest 4-cycles"): the union-of-trees route must equal the
    /// oracle, prepared or ad-hoc, under Sum and Max.
    #[test]
    fn c4_engine_matches_oracle(e in arb_relation(14, 4)) {
        let q = cycle_query(4);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        for rank in [RankSpec::Sum, RankSpec::Max] {
            check_prepared_adhoc_oracle(&q, &rels, rank);
        }
    }

    /// Random append/prepare/stream interleavings on one shared
    /// acyclic engine. After every appended batch: (a) a stream opened
    /// *before* the append drains the pre-append snapshot untouched,
    /// (b) a fresh prepare carries the delta union and matches the
    /// brute-force oracle over base ⊎ deltas, (c) the ad-hoc plan
    /// agrees, and (d) compacting everything at the end changes
    /// nothing but the delta count. Batch domains exceed the base
    /// domain so appends introduce brand-new join partners.
    #[test]
    fn append_interleavings_preserve_snapshots_and_refresh_plans(
        base in prop::collection::vec(arb_relation(10, 4), 3),
        schedule in prop::collection::vec((0usize..3, arb_relation(4, 6)), 1..4),
    ) {
        let q = path_query(3);
        let engine = Engine::from_query_bindings(&q, base.clone());
        let mut combined = base;
        for (atom, batch) in &schedule {
            let before = brute_force_ranked(&q, &combined, RankSpec::Sum);
            let pre = engine
                .prepare(q.clone(), RankSpec::Sum)
                .expect("pre-append prepare");
            let mut open = pre.stream();
            let first = open.next();

            engine
                .append(&q.atom(*atom).relation, batch.clone())
                .expect("append");
            combined[*atom] =
                Relation::concat(&[combined[*atom].clone(), batch.clone()]);

            // (a) The open stream never sees the append: it finishes
            // the snapshot it started on.
            let snapshot: Vec<RankedAnswer> = first.into_iter().chain(open).collect();
            assert_matches_oracle(&snapshot, &before, "mid-append open stream");

            // (b) A fresh prepare serves base ⊎ deltas.
            let want = brute_force_ranked(&q, &combined, RankSpec::Sum);
            let fresh = engine
                .prepare(q.clone(), RankSpec::Sum)
                .expect("post-append prepare");
            prop_assert!(
                fresh.plan().deltas >= 1,
                "post-append plan must carry delta terms"
            );
            let got: Vec<RankedAnswer> = fresh.stream().collect();
            assert_matches_oracle(&got, &want, "post-append prepared stream");

            // (c) The ad-hoc path reads the same catalog.
            let adhoc: Vec<RankedAnswer> = engine
                .query(q.clone())
                .rank_by(RankSpec::Sum)
                .plan()
                .expect("post-append ad-hoc plan")
                .collect();
            assert_matches_oracle(&adhoc, &want, "post-append ad-hoc plan");
        }

        // (d) Compaction folds every delta away; answers stay put.
        for i in 0..q.num_atoms() {
            engine.compact(&q.atom(i).relation).expect("compact");
        }
        let want = brute_force_ranked(&q, &combined, RankSpec::Sum);
        let fresh = engine
            .prepare(q.clone(), RankSpec::Sum)
            .expect("post-compact prepare");
        prop_assert_eq!(fresh.plan().deltas, 0, "compaction clears delta terms");
        let got: Vec<RankedAnswer> = fresh.stream().collect();
        assert_matches_oracle(&got, &want, "post-compact prepared stream");
    }

    /// Random append schedules on a cyclic (triangle) engine: the
    /// delta-union route must keep matching the brute-force oracle
    /// under Sum and Max after every batch.
    #[test]
    fn triangle_append_schedules_match_oracle(
        base in prop::collection::vec(arb_relation(10, 4), 3),
        schedule in prop::collection::vec((0usize..3, arb_relation(3, 5)), 1..3),
    ) {
        let q = triangle_query();
        let engine = Engine::from_query_bindings(&q, base.clone());
        let mut combined = base;
        for (atom, batch) in &schedule {
            engine
                .append(&q.atom(*atom).relation, batch.clone())
                .expect("append");
            combined[*atom] =
                Relation::concat(&[combined[*atom].clone(), batch.clone()]);
            for rank in [RankSpec::Sum, RankSpec::Max] {
                let want = brute_force_ranked(&q, &combined, rank);
                let got: Vec<RankedAnswer> = engine
                    .prepare(q.clone(), rank)
                    .expect("cyclic prepare")
                    .stream()
                    .collect();
                assert_matches_oracle(&got, &want, "triangle post-append");
            }
        }
    }

    /// Random interleaved pulls over several cursors of one prepared
    /// cyclic query agree with a single cursor — including the
    /// triangle's lazy-heap first stream being interleaved with the
    /// upgrade its sibling spawns trigger.
    #[test]
    fn interleaved_cursors_agree_with_single_cursor(
        e in arb_relation(12, 5),
        picks in prop::collection::vec(0usize..3, 1..=60),
    ) {
        for (label, q, m) in [
            ("triangle", triangle_query(), 3usize),
            ("c4", cycle_query(4), 4),
        ] {
            let rels: Vec<Relation> = (0..m).map(|_| e.clone()).collect();
            let engine = Engine::from_query_bindings(&q, rels);
            let prepared = engine.prepare(q.clone(), RankSpec::Sum).expect("prepare");
            // Spawn the interleaved cursors *first* so the triangle
            // route's first cursor is the lazy heap.
            let mut cursors: Vec<_> = (0..3).map(|_| prepared.stream()).collect();
            let expected: Vec<RankedAnswer> = prepared.stream().collect();
            let mut got: Vec<Vec<RankedAnswer>> = vec![Vec::new(); 3];
            for &p in &picks {
                if let Some(a) = cursors[p].next() {
                    got[p].push(a);
                }
            }
            for (i, g) in got.iter().enumerate() {
                assert_eq!(
                    g.as_slice(),
                    &expected[..g.len()],
                    "{label}: cursor {i} prefix"
                );
            }
        }
    }
}
