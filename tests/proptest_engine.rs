//! Property tests for the planner-routed `Engine`.
//!
//! Acyclic: on random instances the engine must produce exactly the
//! stream the `BatchSorted` oracle produces — same cost sequence, same
//! answer multiset — for every runtime ranking defined there.
//!
//! Cyclic: on random triangle and 4-cycle instances, prepared-then-
//! stream == ad-hoc plan == the brute-force nested-loop oracle
//! (`tests/common/oracle.rs`), and random interleaved multi-cursor
//! pulls agree with a single cursor.
//!
//! Instance generation lives in `tests/common/gen.rs` (shared with the
//! oracle and concurrency suites); case counts rise via
//! `ANYK_PROPTEST_CASES` in CI.

mod common;

use anyk::core::{BatchSorted, LexCost, MaxCost, RankingFunction, SumCost};
use anyk::prelude::*;
use anyk::query::cq::ConjunctiveQuery;
use common::gen::{arb_relation, cases_from_env, shaped_acyclic_query};
use common::oracle::check_prepared_adhoc_oracle;
use proptest::prelude::*;

fn oracle<R: RankingFunction>(
    q: &ConjunctiveQuery,
    rels: Vec<Relation>,
) -> Vec<(R::Cost, Vec<i64>)> {
    let tree = match gyo_reduce(q) {
        GyoResult::Acyclic(t) => t,
        _ => panic!("acyclic expected"),
    };
    BatchSorted::<R>::new(q, &tree, rels)
        .map(|a| (a.cost, a.values.iter().map(|v| v.int()).collect()))
        .collect()
}

fn check_scalar_rank(q: &ConjunctiveQuery, rels: Vec<Relation>, rank: RankSpec) {
    let want: Vec<(Weight, Vec<i64>)> = match rank {
        RankSpec::Sum => oracle::<SumCost>(q, rels.clone()),
        RankSpec::Max => oracle::<MaxCost>(q, rels.clone()),
        _ => unreachable!("test covers Sum and Max"),
    };
    let engine = Engine::from_query_bindings(q, rels);
    let got: Vec<(f64, Vec<i64>)> = engine
        .query(q.clone())
        .rank_by(rank)
        .plan()
        .expect("acyclic plan")
        .map(|a| (a.cost.scalar().expect("scalar"), a.ints()))
        .collect();
    assert_eq!(got.len(), want.len(), "{rank}: cardinality");
    for (i, ((gc, _), (wc, _))) in got.iter().zip(&want).enumerate() {
        assert_eq!(*gc, wc.get(), "{rank}: cost at rank {i}");
    }
    let mut gv: Vec<_> = got.into_iter().map(|g| g.1).collect();
    let mut wv: Vec<_> = want.into_iter().map(|w| w.1).collect();
    gv.sort();
    wv.sort();
    assert_eq!(gv, wv, "{rank}: multiset");
}

fn check_lex(q: &ConjunctiveQuery, rels: Vec<Relation>) {
    let want = oracle::<LexCost>(q, rels.clone());
    let engine = Engine::from_query_bindings(q, rels);
    let got: Vec<(Vec<Weight>, Vec<i64>)> = engine
        .query(q.clone())
        .rank_by(RankSpec::Lex)
        .plan()
        .expect("acyclic plan")
        .map(|a| (a.cost.lex().expect("lex").to_vec(), a.ints()))
        .collect();
    assert_eq!(got.len(), want.len(), "lex: cardinality");
    for (i, ((gc, _), (wc, _))) in got.iter().zip(&want).enumerate() {
        assert_eq!(gc, wc, "lex: cost at rank {i}");
    }
    let mut gv: Vec<_> = got.into_iter().map(|g| g.1).collect();
    let mut wv: Vec<_> = want.into_iter().map(|w| w.1).collect();
    gv.sort();
    wv.sort();
    assert_eq!(gv, wv, "lex: multiset");
}

proptest! {
    #![proptest_config(cases_from_env(24))]

    /// Engine == BatchSorted on random 2-paths, for runtime Sum/Max/Lex.
    #[test]
    fn path2_engine_matches_batch(
        r1 in arb_relation(20, 5),
        r2 in arb_relation(20, 5),
    ) {
        let q = path_query(2);
        let rels = vec![r1, r2];
        check_scalar_rank(&q, rels.clone(), RankSpec::Sum);
        check_scalar_rank(&q, rels.clone(), RankSpec::Max);
        check_lex(&q, rels);
    }

    /// Engine == BatchSorted on random 3-paths.
    #[test]
    fn path3_engine_matches_batch(
        r1 in arb_relation(12, 4),
        r2 in arb_relation(12, 4),
        r3 in arb_relation(12, 4),
    ) {
        let q = path_query(3);
        let rels = vec![r1, r2, r3];
        check_scalar_rank(&q, rels.clone(), RankSpec::Sum);
        check_lex(&q, rels);
    }

    /// Engine == BatchSorted on random 3-stars.
    #[test]
    fn star3_engine_matches_batch(
        r1 in arb_relation(10, 4),
        r2 in arb_relation(10, 4),
        r3 in arb_relation(10, 4),
    ) {
        let q = star_query(3);
        let rels = vec![r1, r2, r3];
        check_scalar_rank(&q, rels.clone(), RankSpec::Sum);
        check_scalar_rank(&q, rels, RankSpec::Max);
    }

    /// Self-join: one relation at every atom of a 3-path.
    #[test]
    fn self_join_engine_matches_batch(r in arb_relation(15, 4)) {
        let q = path_query(3);
        let rels = vec![r.clone(), r.clone(), r];
        check_scalar_rank(&q, rels, RankSpec::Sum);
    }

    /// Prepare-once/stream-many equals ad-hoc `plan()` on random
    /// acyclic queries (random shape, size, and data), for every
    /// ranking defined there — and repeated streams of one prepared
    /// query are identical.
    #[test]
    fn prepared_then_stream_equals_adhoc_plan(
        star in 0usize..2,
        n in 2usize..4,
        rels in prop::collection::vec(arb_relation(12, 4), 3),
    ) {
        let q = shaped_acyclic_query(star, n);
        let rels = rels[..n].to_vec();
        for rank in [RankSpec::Sum, RankSpec::Max, RankSpec::Lex] {
            // Separate engines so the ad-hoc run cannot share the
            // prepared engine's cache — the equality is end-to-end.
            let adhoc_engine = Engine::from_query_bindings(&q, rels.clone());
            let adhoc: Vec<_> = adhoc_engine
                .query(q.clone())
                .rank_by(rank)
                .plan()
                .expect("acyclic plan")
                .collect();
            let serve_engine = Engine::from_query_bindings(&q, rels.clone());
            let prepared = serve_engine
                .prepare(q.clone(), rank)
                .expect("acyclic prepare");
            let s1: Vec<_> = prepared.stream().collect();
            let s2: Vec<_> = prepared.stream().collect();
            assert_eq!(s1, adhoc, "{rank}: prepared stream == ad-hoc plan");
            assert_eq!(s2, adhoc, "{rank}: second stream replays identically");
        }
    }

    /// Random triangle instances: prepared-then-stream == ad-hoc plan
    /// == brute-force oracle order, under Sum and Max.
    #[test]
    fn triangle_engine_matches_oracle(
        r1 in arb_relation(12, 5),
        r2 in arb_relation(12, 5),
        r3 in arb_relation(12, 5),
    ) {
        let q = triangle_query();
        let rels = vec![r1, r2, r3];
        for rank in [RankSpec::Sum, RankSpec::Max] {
            check_prepared_adhoc_oracle(&q, &rels, rank);
        }
    }

    /// Random 4-cycle instances (self-join flavored, like the paper's
    /// "k lightest 4-cycles"): the union-of-trees route must equal the
    /// oracle, prepared or ad-hoc, under Sum and Max.
    #[test]
    fn c4_engine_matches_oracle(e in arb_relation(14, 4)) {
        let q = cycle_query(4);
        let rels = vec![e.clone(), e.clone(), e.clone(), e];
        for rank in [RankSpec::Sum, RankSpec::Max] {
            check_prepared_adhoc_oracle(&q, &rels, rank);
        }
    }

    /// Random interleaved pulls over several cursors of one prepared
    /// cyclic query agree with a single cursor — including the
    /// triangle's lazy-heap first stream being interleaved with the
    /// upgrade its sibling spawns trigger.
    #[test]
    fn interleaved_cursors_agree_with_single_cursor(
        e in arb_relation(12, 5),
        picks in prop::collection::vec(0usize..3, 1..=60),
    ) {
        for (label, q, m) in [
            ("triangle", triangle_query(), 3usize),
            ("c4", cycle_query(4), 4),
        ] {
            let rels: Vec<Relation> = (0..m).map(|_| e.clone()).collect();
            let engine = Engine::from_query_bindings(&q, rels);
            let prepared = engine.prepare(q.clone(), RankSpec::Sum).expect("prepare");
            // Spawn the interleaved cursors *first* so the triangle
            // route's first cursor is the lazy heap.
            let mut cursors: Vec<_> = (0..3).map(|_| prepared.stream()).collect();
            let expected: Vec<RankedAnswer> = prepared.stream().collect();
            let mut got: Vec<Vec<RankedAnswer>> = vec![Vec::new(); 3];
            for &p in &picks {
                if let Some(a) = cursors[p].next() {
                    got[p].push(a);
                }
            }
            for (i, g) in got.iter().enumerate() {
                assert_eq!(
                    g.as_slice(),
                    &expected[..g.len()],
                    "{label}: cursor {i} prefix"
                );
            }
        }
    }
}
