//! Property-based cross-checks of every batch join algorithm: on random
//! inputs, nested-loop, binary plans, Generic-Join, Leapfrog Triejoin,
//! Yannakakis (acyclic), and GHD execution (cyclic) must all agree.

use anyk::join::binary::binary_join;
use anyk::join::decomposed::decomposed_join;
use anyk::join::generic_join::generic_join_materialize;
use anyk::join::leapfrog::leapfrog_materialize;
use anyk::join::nested_loop::{assert_same_result, nested_loop_join};
use anyk::join::yannakakis::yannakakis_join;
use anyk::query::cq::{cycle_query, path_query, star_query, triangle_query, ConjunctiveQuery};
use anyk::query::decompose::{fhw_exact, fhw_greedy};
use anyk::query::gyo::{gyo_reduce, GyoResult};
use anyk::query::hypergraph::Hypergraph;
use anyk::storage::{Relation, RelationBuilder, Schema};
use proptest::prelude::*;

/// Random binary relation over a small domain; dyadic weights; optional
/// dedup (GHD execution assumes duplicate-free inputs).
fn arb_relation(max_rows: usize, domain: i64, dedup: bool) -> impl Strategy<Value = Relation> {
    prop::collection::vec((0..domain, 0..domain, 0i32..64), 1..=max_rows).prop_map(move |rows| {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for (x, y, w) in rows {
            b.push_ints(&[x, y], w as f64 / 4.0);
        }
        let mut r = b.finish();
        if dedup {
            r.dedup();
        }
        r
    })
}

fn check_wco_agree(q: &ConjunctiveQuery, rels: &[Relation]) {
    let nl = nested_loop_join(q, rels);
    let (gj, _) = generic_join_materialize(q, rels, None);
    let lftj = leapfrog_materialize(q, rels, None);
    assert_same_result(&nl, &gj);
    assert_same_result(&nl, &lftj);
    // Binary plans too (first atom order).
    let order: Vec<usize> = (0..q.num_atoms()).collect();
    let (bj, _) = binary_join(q, rels, &order);
    assert_same_result(&nl, &bj);
}

fn check_ghd_agree(q: &ConjunctiveQuery, rels: &[Relation]) {
    let (gj, _) = generic_join_materialize(q, rels, None);
    let h = Hypergraph::of_query(q);
    for d in [fhw_exact(&h), fhw_greedy(&h)] {
        let ghd = decomposed_join(q, rels, &d);
        assert_same_result(&gj, &ghd);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn triangle_all_algorithms(r in arb_relation(14, 4, true)) {
        let q = triangle_query();
        let rels = vec![r.clone(), r.clone(), r];
        check_wco_agree(&q, &rels);
        check_ghd_agree(&q, &rels);
    }

    #[test]
    fn four_cycle_all_algorithms(r in arb_relation(12, 4, true)) {
        let q = cycle_query(4);
        let rels = vec![r.clone(), r.clone(), r.clone(), r];
        check_wco_agree(&q, &rels);
        check_ghd_agree(&q, &rels);
    }

    #[test]
    fn path_yannakakis_vs_wco(
        r1 in arb_relation(15, 5, false),
        r2 in arb_relation(15, 5, false),
        r3 in arb_relation(15, 5, false),
    ) {
        let q = path_query(3);
        let rels = vec![r1, r2, r3];
        check_wco_agree(&q, &rels);
        let tree = match gyo_reduce(&q) {
            GyoResult::Acyclic(t) => t,
            _ => unreachable!(),
        };
        let y = yannakakis_join(&q, &tree, rels.clone());
        let nl = nested_loop_join(&q, &rels);
        assert_same_result(&y, &nl);
    }

    #[test]
    fn star_yannakakis_vs_wco(
        r1 in arb_relation(12, 4, false),
        r2 in arb_relation(12, 4, false),
        r3 in arb_relation(12, 4, false),
    ) {
        let q = star_query(3);
        let rels = vec![r1, r2, r3];
        check_wco_agree(&q, &rels);
        let tree = match gyo_reduce(&q) {
            GyoResult::Acyclic(t) => t,
            _ => unreachable!(),
        };
        let y = yannakakis_join(&q, &tree, rels.clone());
        let nl = nested_loop_join(&q, &rels);
        assert_same_result(&y, &nl);
    }

    #[test]
    fn distinct_relations_cycle(
        r1 in arb_relation(10, 4, true),
        r2 in arb_relation(10, 4, true),
        r3 in arb_relation(10, 4, true),
        r4 in arb_relation(10, 4, true),
    ) {
        let q = cycle_query(4);
        let rels = vec![r1, r2, r3, r4];
        check_wco_agree(&q, &rels);
        check_ghd_agree(&q, &rels);
    }
}
