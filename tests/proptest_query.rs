//! Property-based tests of the query-analysis layer: acyclicity,
//! widths, and the AGM bound against actual outputs.

use anyk::join::generic_join::generic_join_materialize;
use anyk::join::yannakakis::yannakakis_count;
use anyk::query::agm::{agm_bound, fractional_edge_cover, integral_edge_cover};
use anyk::query::cq::{ConjunctiveQuery, QueryBuilder};
use anyk::query::decompose::{fhw_exact, fhw_greedy};
use anyk::query::gyo::{gyo_reduce, is_acyclic, is_acyclic_bruteforce, GyoResult};
use anyk::query::hypergraph::Hypergraph;
use anyk::storage::{Relation, RelationBuilder, Schema};
use proptest::prelude::*;

/// A random conjunctive query: 2–4 binary atoms over 2–4 variables.
fn arb_query() -> impl Strategy<Value = ConjunctiveQuery> {
    let vars = ["a", "b", "c", "d"];
    prop::collection::vec((0usize..4, 0usize..4), 2..=4).prop_map(move |atoms| {
        let mut qb = QueryBuilder::new();
        for (i, (x, y)) in atoms.into_iter().enumerate() {
            qb = qb.atom(format!("R{i}"), &[vars[x], vars[y]]);
        }
        qb.build()
    })
}

fn arb_relation(max_rows: usize, domain: i64) -> impl Strategy<Value = Relation> {
    prop::collection::vec((0..domain, 0..domain), 1..=max_rows).prop_map(|rows| {
        let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
        for (x, y) in rows {
            b.push_ints(&[x, y], 0.0);
        }
        let mut r = b.finish();
        r.dedup();
        r
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// GYO agrees with the brute-force acyclicity oracle.
    #[test]
    fn gyo_matches_bruteforce(q in arb_query()) {
        prop_assert_eq!(is_acyclic(&q), is_acyclic_bruteforce(&q));
    }

    /// GYO's join tree (when produced) satisfies running intersection.
    #[test]
    fn gyo_tree_is_valid(q in arb_query()) {
        if let GyoResult::Acyclic(t) = gyo_reduce(&q) {
            prop_assert!(t.satisfies_running_intersection(&q));
        }
    }

    /// Width chain: 1 <= fhw_exact <= fhw_greedy <= rho* <= integral
    /// cover, and acyclic iff fhw == 1.
    #[test]
    fn width_inequalities(q in arb_query()) {
        let h = Hypergraph::of_query(&q);
        let exact = fhw_exact(&h);
        let greedy = fhw_greedy(&h);
        let rho = fractional_edge_cover(&h, h.all_vars()).unwrap().value;
        let int_cover = integral_edge_cover(&h, h.all_vars()).unwrap() as f64;
        prop_assert!(exact.width >= 1.0 - 1e-9);
        prop_assert!(greedy.width >= exact.width - 1e-9);
        prop_assert!(rho >= exact.width - 1e-9, "rho {rho} < fhw {}", exact.width);
        prop_assert!(int_cover >= rho - 1e-9);
        prop_assert!(exact.is_valid(&h));
        prop_assert!(greedy.is_valid(&h));
        if is_acyclic(&q) {
            prop_assert!((exact.width - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(exact.width > 1.0 + 1e-9);
        }
    }

    /// The AGM bound upper-bounds the actual output size on every
    /// instance (the defining property).
    #[test]
    fn agm_bound_holds(
        q in arb_query(),
        rels_seed in prop::collection::vec(arb_relation(10, 3), 4),
    ) {
        let rels: Vec<Relation> = (0..q.num_atoms()).map(|i| rels_seed[i].clone()).collect();
        let h = Hypergraph::of_query(&q);
        let sizes: Vec<usize> = rels.iter().map(Relation::len).collect();
        let bound = agm_bound(&h, &sizes).unwrap();
        let (out, _) = generic_join_materialize(&q, &rels, None);
        prop_assert!(
            out.len() as f64 <= bound + 1e-6,
            "output {} exceeds AGM bound {bound}",
            out.len()
        );
    }

    /// On acyclic queries, the counting DP agrees with WCO enumeration.
    #[test]
    fn count_matches_enumeration(
        q in arb_query(),
        rels_seed in prop::collection::vec(arb_relation(8, 3), 4),
    ) {
        if let GyoResult::Acyclic(tree) = gyo_reduce(&q) {
            let rels: Vec<Relation> =
                (0..q.num_atoms()).map(|i| rels_seed[i].clone()).collect();
            let count = yannakakis_count(&q, &tree, rels.clone());
            let (out, _) = generic_join_materialize(&q, &rels, None);
            prop_assert_eq!(count, out.len() as u128);
        }
    }
}
