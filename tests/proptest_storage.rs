//! Property-based tests of the storage substrate against simple models:
//! tries vs sorted scans, indexes vs linear filters, dedup vs maps.

use anyk::storage::{HashIndex, Relation, RelationBuilder, Schema, SortedIndex, Trie, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_rows(max_rows: usize, domain: i64) -> impl Strategy<Value = Vec<(i64, i64, f64)>> {
    prop::collection::vec((0..domain, 0..domain, 0i32..64), 0..=max_rows).prop_map(|rows| {
        rows.into_iter()
            .map(|(a, b, w)| (a, b, w as f64 / 4.0))
            .collect()
    })
}

fn build(rows: &[(i64, i64, f64)]) -> Relation {
    let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
    for &(x, y, w) in rows {
        b.push_ints(&[x, y], w);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Trie leaf enumeration visits exactly the relation's rows, in
    /// lexicographic order of the chosen attribute order.
    #[test]
    fn trie_enumerates_sorted_rows(rows in arb_rows(40, 8)) {
        prop_assume!(!rows.is_empty());
        let rel = build(&rows);
        let trie = Trie::build(&rel, &[0, 1]);
        // Walk the trie fully.
        let mut seen: Vec<(i64, i64)> = Vec::new();
        let root = trie.root();
        for i in root.start..root.end {
            let u = trie.value_at(root, i).int();
            let child = trie.descend(root, i);
            for j in child.start..child.end {
                let v = trie.value_at(child, j).int();
                for &rid in trie.leaf_rows(child, j) {
                    let row = rel.row(rid);
                    prop_assert_eq!(row[0].int(), u);
                    prop_assert_eq!(row[1].int(), v);
                    seen.push((u, v));
                }
            }
        }
        let mut expect: Vec<(i64, i64)> = rows.iter().map(|&(a, b, _)| (a, b)).collect();
        expect.sort();
        prop_assert_eq!(seen.len(), expect.len());
        prop_assert!(seen.windows(2).all(|w| w[0] <= w[1]));
        let mut seen_sorted = seen.clone();
        seen_sorted.sort();
        prop_assert_eq!(seen_sorted, expect);
    }

    /// Trie::seek equals the first linear-scan position with value >= v.
    #[test]
    fn trie_seek_matches_linear_scan(rows in arb_rows(40, 10), probe in 0i64..12) {
        prop_assume!(!rows.is_empty());
        let rel = build(&rows);
        let trie = Trie::build(&rel, &[0]);
        let root = trie.root();
        let vals: Vec<i64> = trie.child_values(root).iter().map(|v| v.int()).collect();
        let got = trie.seek(root, root.start, Value::Int(probe));
        let expect = vals.iter().position(|&x| x >= probe).unwrap_or(vals.len());
        prop_assert_eq!(got as usize, expect);
    }

    /// HashIndex groups match a model filter.
    #[test]
    fn hash_index_matches_filter(rows in arb_rows(40, 6), probe in 0i64..8) {
        let rel = build(&rows);
        let idx = HashIndex::build(&rel, &[0]);
        let mut got: Vec<u32> = idx.get(&[Value::Int(probe)]).to_vec();
        got.sort();
        let expect: Vec<u32> = (0..rel.len() as u32)
            .filter(|&i| rel.row(i)[0].int() == probe)
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// SortedIndex range lookup matches the model too.
    #[test]
    fn sorted_index_matches_filter(rows in arb_rows(40, 6), probe in 0i64..8) {
        let rel = build(&rows);
        let idx = SortedIndex::build(&rel, &[1]);
        let mut got: Vec<u32> = idx.range(&rel, &[Value::Int(probe)]).to_vec();
        got.sort();
        let expect: Vec<u32> = (0..rel.len() as u32)
            .filter(|&i| rel.row(i)[1].int() == probe)
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// Dedup keeps exactly the distinct tuples with minimal weights.
    #[test]
    fn dedup_matches_btreemap_model(rows in arb_rows(40, 5)) {
        let mut rel = build(&rows);
        rel.dedup();
        let mut model: BTreeMap<(i64, i64), f64> = BTreeMap::new();
        for &(a, b, w) in &rows {
            model
                .entry((a, b))
                .and_modify(|m| *m = m.min(w))
                .or_insert(w);
        }
        prop_assert_eq!(rel.len(), model.len());
        for i in 0..rel.len() as u32 {
            let key = (rel.row(i)[0].int(), rel.row(i)[1].int());
            prop_assert_eq!(rel.weight(i).get(), model[&key]);
        }
    }

    /// retain behaves like a filtered rebuild.
    #[test]
    fn retain_matches_filter(rows in arb_rows(40, 6), keep_below in 0i64..8) {
        let mut rel = build(&rows);
        rel.retain(|rid| rel_row_first(&rows, rid) < keep_below);
        let expect: Vec<(i64, i64)> = rows
            .iter()
            .filter(|&&(a, _, _)| a < keep_below)
            .map(|&(a, b, _)| (a, b))
            .collect();
        prop_assert_eq!(rel.len(), expect.len());
        for (i, &(a, b)) in expect.iter().enumerate() {
            prop_assert_eq!(rel.row(i as u32)[0].int(), a);
            prop_assert_eq!(rel.row(i as u32)[1].int(), b);
        }
    }
}

/// `retain` passes original row ids in order, so the model can look at
/// the original rows.
fn rel_row_first(rows: &[(i64, i64, f64)], rid: u32) -> i64 {
    rows[rid as usize].0
}
