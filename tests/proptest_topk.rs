//! Property-based tests for the Part-1 algorithms: FA / TA / NRA / CA
//! against the brute-force oracle on arbitrary ranked lists, and
//! rank-join trees against sorted batch join on arbitrary relations.

use anyk::storage::{Relation, RelationBuilder, Schema};
use anyk::topk::ca::combined_topk;
use anyk::topk::lists::{Aggregation, RankedLists};
use anyk::topk::rank_join::rank_join_path;
use anyk::topk::{fagin_topk, nra_topk, threshold_topk};
use proptest::prelude::*;

/// m lists over a shared object space with dyadic scores in [0, 1].
fn arb_lists(m: usize, max_n: usize) -> impl Strategy<Value = Vec<Vec<(u64, f64)>>> {
    (1..=max_n).prop_flat_map(move |n| {
        prop::collection::vec(prop::collection::vec(0u32..=4096, n..=n), m..=m).prop_map(
            move |scoress| {
                scoress
                    .into_iter()
                    .map(|scores| {
                        scores
                            .into_iter()
                            .enumerate()
                            .map(|(o, s)| (o as u64, s as f64 / 4096.0))
                            .collect()
                    })
                    .collect()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FA, TA and CA return aggregates position-wise equal to the
    /// oracle; NRA returns the correct top-k set.
    #[test]
    fn middleware_family_matches_oracle(
        lists in arb_lists(3, 40),
        k in 1usize..10,
        agg_idx in 0usize..3,
    ) {
        let agg = [Aggregation::Sum, Aggregation::Min, Aggregation::Max][agg_idx];
        let oracle = RankedLists::new(lists.clone()).oracle_topk(k, agg);

        let mut l = RankedLists::new(lists.clone());
        let fa = fagin_topk(&mut l, k, agg);
        prop_assert_eq!(fa.len(), oracle.len());
        for (g, o) in fa.iter().zip(&oracle) {
            prop_assert!((g.1 - o.1).abs() < 1e-9, "FA {} vs {}", g.1, o.1);
        }

        let mut l = RankedLists::new(lists.clone());
        let ta = threshold_topk(&mut l, k, agg);
        prop_assert_eq!(ta.len(), oracle.len());
        for (g, o) in ta.iter().zip(&oracle) {
            prop_assert!((g.1 - o.1).abs() < 1e-9, "TA {} vs {}", g.1, o.1);
        }

        let mut l = RankedLists::new(lists.clone());
        let ca = combined_topk(&mut l, k, agg, 3);
        prop_assert_eq!(ca.len(), oracle.len());
        for (g, o) in ca.iter().zip(&oracle) {
            prop_assert!((g.1 - o.1).abs() < 1e-9, "CA {} vs {}", g.1, o.1);
        }

        // NRA: set-level guarantee only, and only for aggregations where
        // the missing-cell floor (0) is sound — Sum and Max with
        // non-negative scores; Min's lower bound needs per-list floors,
        // so it may over-scan but must still return a valid set when it
        // terminates by exhaustion.
        if matches!(agg, Aggregation::Sum | Aggregation::Max) {
            let mut l = RankedLists::new(lists.clone());
            let nra = nra_topk(&mut l, k, agg);
            prop_assert_eq!(nra.len(), oracle.len());
            let mut got: Vec<f64> = nra
                .iter()
                .map(|&(o, _)| agg.apply(&l.oracle_scores(o)))
                .collect();
            let mut want: Vec<f64> = oracle.iter().map(|x| x.1).collect();
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (g, o) in got.iter().zip(&want) {
                prop_assert!((g - o).abs() < 1e-9, "NRA {} vs {}", g, o);
            }
        }
    }

    /// A left-deep HRJN path tree enumerates exactly the join results in
    /// non-decreasing weight order.
    #[test]
    fn rank_join_tree_matches_oracle(
        rows1 in prop::collection::vec((0i64..4, 0i64..4, 0u32..64), 1..12),
        rows2 in prop::collection::vec((0i64..4, 0i64..4, 0u32..64), 1..12),
        rows3 in prop::collection::vec((0i64..4, 0i64..4, 0u32..64), 1..12),
    ) {
        let build = |rows: &[(i64, i64, u32)]| -> Relation {
            let mut b = RelationBuilder::new(Schema::new(["u", "v"]));
            for &(x, y, w) in rows {
                b.push_ints(&[x, y], w as f64 / 4.0);
            }
            b.finish()
        };
        let rels = vec![build(&rows1), build(&rows2), build(&rows3)];
        // Oracle: nested loops.
        let mut expect: Vec<f64> = Vec::new();
        for &(_, b1, w1) in &rows1 {
            for &(a2, b2, w2) in &rows2 {
                if a2 != b1 { continue; }
                for &(a3, _, w3) in &rows3 {
                    if a3 != b2 { continue; }
                    expect.push((w1 + w2 + w3) as f64 / 4.0);
                }
            }
        }
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got: Vec<f64> = rank_join_path(rels).map(|t| t.weight).collect();
        prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() < 1e-9, "{} vs {}", g, e);
        }
        prop_assert!(got.windows(2).all(|w| w[0] <= w[1]));
    }
}
