//! Integration suite for `anyk-serve`: the protocol must page out
//! exactly what the engine streams — over TCP and in-process alike —
//! and the session layer's lifecycle rules (cursors, TTL, admission)
//! must fail typed, never wrong.

mod common;

use anyk::prelude::*;
use anyk::serve::{
    encode_answer, parse, select_text, Response, Server, TcpClient, Transport, TransportConfig,
};
use common::gen::edge_rel;
use common::oracle::{assert_matches_oracle, brute_force_ranked};
use std::time::Duration;

/// Both accept architectures: every wire-level test runs against each
/// (and `Server::bind` additionally picks one via
/// `ANYK_SERVE_TRANSPORT`, which CI exercises both ways).
const TRANSPORTS: [Transport; 2] = [Transport::ThreadPerConn, Transport::EventLoop];

fn bind(service: &Service, transport: Transport) -> Server {
    Server::bind_with(
        service.clone(),
        "127.0.0.1:0",
        TransportConfig {
            transport,
            ..TransportConfig::default()
        },
    )
    .expect("bind")
}

/// The shared fixture edge set (dyadic weights, deliberate ties).
fn fixture_edges() -> Vec<(i64, i64, f64)> {
    vec![
        (1, 2, 0.5),
        (2, 3, 1.0),
        (3, 1, 0.25),
        (2, 1, 2.0),
        (1, 3, 0.125),
        (3, 2, 0.75),
        (3, 4, 0.5),
        (4, 1, 1.5),
        (4, 2, 0.25),
        (2, 4, 1.0),
        (4, 3, 0.5),
        (1, 4, 0.375),
    ]
}

/// Every planner route as a (label, query, relation-count) triple.
fn shapes() -> Vec<(&'static str, anyk::query::cq::ConjunctiveQuery, usize)> {
    vec![
        ("acyclic", path_query(3), 3),
        ("acyclic", star_query(3), 3),
        ("triangle", triangle_query(), 3),
        ("four-cycle", cycle_query(4), 4),
        ("decomposed", cycle_query(5), 5),
    ]
}

fn service_for(q: &anyk::query::cq::ConjunctiveQuery, m: usize) -> (Service, Vec<Relation>) {
    let e = edge_rel(&fixture_edges());
    let rels: Vec<Relation> = (0..m).map(|_| e.clone()).collect();
    let engine = Engine::from_query_bindings(q, rels.clone());
    (Service::new(engine), rels)
}

/// Drive one query through the protocol to exhaustion, returning every
/// `ROW` line in order (the page seams must be invisible).
fn page_rows(client: &mut LocalClient, select: &str, page: usize) -> Vec<String> {
    let mut rows = Vec::new();
    let mut reply = client.send(select);
    loop {
        let header = reply.lines().next().expect("header").to_string();
        assert!(header.starts_with("OK "), "{select}: {reply}");
        rows.extend(
            reply
                .lines()
                .filter(|l| l.starts_with("ROW "))
                .map(String::from),
        );
        if header.contains("done=true") {
            return rows;
        }
        let cursor = header
            .split("cursor=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .expect("cursor field")
            .to_string();
        assert_ne!(cursor, "-", "not done yet must carry a cursor");
        reply = client.send(&format!("NEXT {page} ON {cursor};"));
    }
}

#[test]
fn server_pages_match_direct_streams_and_oracle_on_every_route() {
    for (route, q, m) in shapes() {
        let (service, rels) = service_for(&q, m);
        for rank in RankSpec::ALL {
            let select = select_text(&q, rank, Some(3));
            // Protocol bytes, paged 3 at a time across many NEXTs.
            let mut client = LocalClient::new(&service);
            let got_rows = page_rows(&mut client, &select, 3);
            // Direct prepared stream, one shot, same encoder.
            let prepared = service
                .engine()
                .expect("single-engine service")
                .prepare(q.clone(), rank)
                .unwrap_or_else(|e| panic!("{route} × {rank}: {e}"));
            let want_rows: Vec<String> = prepared.stream().map(|a| encode_answer(&a)).collect();
            assert!(
                !want_rows.is_empty(),
                "{route} × {rank}: fixture has answers"
            );
            assert_eq!(
                got_rows, want_rows,
                "{route} × {rank}: server pages must be byte-identical to the direct stream"
            );
            // And the structured pages must match the brute-force
            // oracle's total order.
            let mut session = service.session();
            let mut answers: Vec<RankedAnswer> = Vec::new();
            let mut resp = session.execute(&select).expect("select");
            loop {
                let Response::Page(page) = resp else {
                    panic!("{route} × {rank}: expected a page")
                };
                answers.extend(page.answers);
                match page.cursor {
                    Some(id) => resp = session.execute(&format!("NEXT 3 ON {id};")).unwrap(),
                    None => break,
                }
            }
            let want = brute_force_ranked(&q, &rels, rank);
            assert_matches_oracle(&answers, &want, &format!("{route} × {rank} via protocol"));
        }
    }
}

#[test]
fn tcp_and_local_transports_are_byte_identical() {
    let q = path_query(3);
    for transport in TRANSPORTS {
        // A fresh service per transport so cursor ids line up with the
        // LocalClient's.
        let (service, _) = service_for(&q, 3);
        let mut server = bind(&service, transport);
        let mut tcp = TcpClient::connect(server.addr()).expect("connect");
        let mut local = LocalClient::new(&service);

        let script = [
            "SELECT R1(x0,x1), R2(x1,x2), R3(x2,x3) RANK BY sum LIMIT 4;".to_string(),
            "NEXT 4 ON 0;".to_string(),
            "EXPLAIN SELECT R1(a,b), R2(b,c) RANK BY max;".to_string(),
            "SELECT R1(a,b) RANK BY lex LIMIT 2;".to_string(),
            "CLOSE 1;".to_string(),
            // Typed failures must render identically too.
            "NEXT 5 ON 99;".to_string(),
            "CLOSE 99;".to_string(),
            "SELECT Nope(a,b);".to_string(),
            "SELECT R1(a,b) RANK BY median;".to_string(),
            "NONSENSE;".to_string(),
        ];
        for cmd in script {
            let via_tcp = tcp.send(&cmd).expect("tcp round-trip");
            let via_local = local.send(&cmd);
            assert_eq!(
                via_tcp, via_local,
                "{transport:?}: transport divergence on `{cmd}`"
            );
        }
        server.shutdown();
    }
}

#[test]
fn insert_and_load_round_trip_byte_identically_across_transports() {
    let q = path_query(3);
    for transport in TRANSPORTS {
        // Writes mutate the backing catalog, so the TCP and local
        // clients each run the script against their own fresh service —
        // sharing one would double-append and diverge the delta counts.
        let (tcp_service, _) = service_for(&q, 3);
        let (local_service, _) = service_for(&q, 3);
        let mut server = bind(&tcp_service, transport);
        let mut tcp = TcpClient::connect(server.addr()).expect("connect");
        let mut local = LocalClient::new(&local_service);

        let script = [
            // The write path proper: literal rows and an inline CSV
            // block, then a SELECT that reads base ⊎ both deltas.
            "INSERT INTO R1 VALUES (7,8,0.5),(8,9,0.25);",
            "LOAD R2 FROM CSV 'u,v,weight\\n8,9,0.125\\n9,7,0.5\\n';",
            "SELECT R1(a,b), R2(b,c) RANK BY sum LIMIT 5;",
            "NEXT 5 ON 0;",
            "CLOSE 0;",
            "EXPLAIN SELECT R1(a,b), R2(b,c) RANK BY sum;",
            // Typed write failures must render identically too.
            "INSERT INTO Nope VALUES (1,2,0.5);",
            "INSERT INTO R1 VALUES (1,0.5);",
            "INSERT INTO R1 VALUES (1,2,0.5),(3,4);",
            "LOAD R1 FROM CSV 'u,v,weight\\nbogus\\n';",
        ];
        for cmd in script {
            let via_tcp = tcp.send(cmd).expect("tcp round-trip");
            let via_local = local.send(cmd);
            assert_eq!(
                via_tcp, via_local,
                "{transport:?}: transport divergence on `{cmd}`"
            );
        }
        server.shutdown();
    }
}

#[test]
fn write_path_errors_render_typed_and_stable() {
    let q = path_query(2);
    let e = edge_rel(&fixture_edges());
    let engine = Engine::from_query_bindings(&q, vec![e.clone(), e]);
    let service = Service::with_config(
        engine,
        ServiceConfig {
            max_batch_rows: 2,
            ..ServiceConfig::default()
        },
    );
    let mut client = LocalClient::new(&service);

    // The happy path pins the exact Appended rendering first.
    assert_eq!(
        client.send("INSERT INTO R1 VALUES (7,8,0.5),(8,9,0.25);"),
        "OK appended rows=2 deltas=1 compacted=false\nEND\n"
    );
    // Admission bound on batch size, checked before the engine runs.
    assert_eq!(
        client.send("INSERT INTO R1 VALUES (1,2,0.5),(2,3,0.5),(3,4,0.5);"),
        "ERR batch: batch of 3 rows exceeds the 2-row bound\nEND\n"
    );
    // Ragged rows are a protocol-level batch error, not an engine one.
    assert_eq!(
        client.send("INSERT INTO R1 VALUES (1,2,0.5),(3,4);"),
        "ERR batch: insert row 1 has 2 cells, expected 3 like the first row\nEND\n"
    );
    // Catalog failures surface the engine's typed storage errors.
    assert_eq!(
        client.send("INSERT INTO Nope VALUES (1,2,0.5);"),
        "ERR engine: storage: relation `Nope` not registered in catalog\nEND\n"
    );
    assert_eq!(
        client.send("INSERT INTO R1 VALUES (1,0.5);"),
        "ERR engine: storage: append to `R1`: batch arity 1 does not match \
         relation arity 2\nEND\n"
    );
    // CSV failures carry the csv reader's message under their own kind.
    let csv_err = client.send("LOAD R1 FROM CSV 'u,v,weight\\nbogus\\n';");
    assert!(
        csv_err.starts_with("ERR csv: parse error:") && csv_err.ends_with("END\n"),
        "{csv_err}"
    );
    // The reserved shard-fragment marker never reaches the engine: the
    // wire grammar's identifier lexer rejects `#` outright.
    let reserved = client.send("INSERT INTO R#1 VALUES (1,2,0.5);");
    assert!(reserved.starts_with("ERR parse:"), "{reserved}");

    // After all that, the one successful batch is the only write.
    let stats = service.stats();
    assert_eq!(stats.appends, 1);
    assert_eq!(stats.appended_rows, 2);
}

#[test]
fn write_commands_render_and_reparse_to_the_same_ast() {
    // parse → Display → parse is the identity on write commands, so
    // clients can log and replay the canonical text.
    for text in [
        "INSERT INTO R VALUES (1,2,0.5),(-3,4,1.0);",
        "INSERT INTO Edge VALUES (-1,-2,-0.125);",
        "LOAD Edge FROM CSV 'u,v,weight\\n1,2,0.5\\n';",
        "LOAD Q FROM CSV 'a,w\\nit\\'s,1.0\\n';",
        "insert into R values ( 1 , 2 , 0.5 )",
    ] {
        let cmd = parse(text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
        let rendered = cmd.to_string();
        let reparsed = parse(&rendered).unwrap_or_else(|e| panic!("rendered `{rendered}`: {e}"));
        assert_eq!(cmd, reparsed, "`{text}` → `{rendered}` must reparse equal");
    }
}

#[test]
fn explain_and_stats_surface_the_write_path() {
    let q = path_query(2);
    let e = edge_rel(&fixture_edges());
    let engine = Engine::from_query_bindings(&q, vec![e.clone(), e]);
    let service = Service::new(engine);
    let mut client = LocalClient::new(&service);

    // Warm the plan, append, and EXPLAIN: the plan now reports the
    // delta term the union carries.
    let select = "SELECT R1(a,b), R2(b,c) RANK BY sum LIMIT 2;";
    let first = client.send(select);
    assert!(first.starts_with("OK cursor="), "{first}");
    assert_eq!(
        client.send("INSERT INTO R1 VALUES (7,8,0.5),(8,9,0.25);"),
        "OK appended rows=2 deltas=1 compacted=false\nEND\n"
    );
    let explain = client.send(&format!("EXPLAIN {select}"));
    assert!(explain.contains("deltas = 1"), "{explain}");

    // STATS carries the write counters on the wire.
    let stats = client.send("STATS;");
    for field in [
        "INFO appends=1",
        "INFO appended_rows=2",
        "INFO compactions=0",
        "INFO append_invalidations=1",
    ] {
        assert!(stats.contains(field), "missing `{field}`:\n{stats}");
    }
}

#[test]
fn framing_survives_partial_and_pipelined_segments_on_both_transports() {
    let q = path_query(3);
    for transport in TRANSPORTS {
        let (service, _) = service_for(&q, 3);
        let mut server = bind(&service, transport);
        let mut tcp = TcpClient::connect(server.addr()).expect("connect");
        // The expected bytes come from a LocalClient running the same
        // commands against an identical fresh service.
        let (reference, _) = service_for(&q, 3);
        let mut local = LocalClient::new(&reference);

        // One command dribbled in across four TCP segments.
        for piece in [
            "SELECT R1(x0,x1), R2(",
            "x1,x2), R3(x2",
            ",x3) RANK",
            " BY sum LIMIT 3;\n",
        ] {
            tcp.send_raw(piece.as_bytes()).expect("partial write");
            std::thread::sleep(Duration::from_millis(2));
        }
        let got = tcp.read_reply().expect("reply after last segment");
        let want = local.send("SELECT R1(x0,x1), R2(x1,x2), R3(x2,x3) RANK BY sum LIMIT 3;");
        assert_eq!(got, want, "{transport:?}: partial-line framing");

        // Three commands pipelined into one segment: three reply
        // blocks, in order, byte-identical to the serial transcript.
        tcp.send_raw(b"NEXT 2 ON 0;\nSTATS;\nCLOSE 0;\n")
            .expect("pipelined write");
        let got: Vec<String> = (0..3).map(|_| tcp.read_reply().expect("reply")).collect();
        let want_next = local.send("NEXT 2 ON 0;");
        let want_stats_header = "OK stats\n";
        let want_close = local.send("CLOSE 0;");
        assert_eq!(got[0], want_next, "{transport:?}: pipelined NEXT");
        assert!(
            got[1].starts_with(want_stats_header),
            "{transport:?}: pipelined STATS: {}",
            got[1]
        );
        assert_eq!(got[2], want_close, "{transport:?}: pipelined CLOSE");
        server.shutdown();
    }
}

#[test]
fn env_selected_default_bind_serves_the_protocol() {
    // `Server::bind` picks its transport from ANYK_SERVE_TRANSPORT —
    // this is the one test that goes through that path, so the CI
    // reruns with the env pinned to each transport genuinely cover
    // both accept architectures end-to-end.
    let q = path_query(3);
    let (service, _) = service_for(&q, 3);
    let mut server = Server::bind(service.clone(), "127.0.0.1:0").expect("bind");
    let mut tcp = TcpClient::connect(server.addr()).expect("connect");
    let mut local = LocalClient::new(&service);
    for cmd in [
        "SELECT R1(x0,x1), R2(x1,x2), R3(x2,x3) RANK BY sum LIMIT 4;",
        "NEXT 4 ON 0;",
        "CLOSE 0;",
        "STATS;",
    ] {
        let via_tcp = tcp.send(cmd).expect("tcp round-trip");
        assert_eq!(via_tcp, local.send(cmd), "divergence on `{cmd}`");
    }
    server.shutdown();
}

#[test]
fn half_close_without_newline_still_serves_the_final_command() {
    // `printf 'STATS;' | nc` — no trailing newline, client shuts its
    // write half: the command must still get its reply on both
    // transports (the framer flushes the partial line at EOF).
    let q = path_query(3);
    for transport in TRANSPORTS {
        let (service, _) = service_for(&q, 3);
        let mut server = bind(&service, transport);
        let stream = std::net::TcpStream::connect(server.addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        std::io::Write::write_all(&mut writer, b"STATS;").expect("write");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut reply = String::new();
        std::io::Read::read_to_string(&mut { stream }, &mut reply).expect("read");
        assert!(
            reply.starts_with("OK stats\n") && reply.ends_with("END\n"),
            "{transport:?}: unterminated final command must be served: {reply:?}"
        );
        server.shutdown();
    }
}

#[test]
fn oversized_lines_get_a_typed_proto_error_and_the_connection_survives() {
    let q = path_query(3);
    for transport in TRANSPORTS {
        let (service, _) = service_for(&q, 3);
        let mut server = Server::bind_with(
            service.clone(),
            "127.0.0.1:0",
            TransportConfig {
                transport,
                max_line_len: 64,
                ..TransportConfig::default()
            },
        )
        .expect("bind");
        let mut tcp = TcpClient::connect(server.addr()).expect("connect");

        // A 200-byte monster line: one typed ERR block, then the
        // connection keeps serving.
        let monster = format!("SELECT {};\n", "R1(a,b), ".repeat(22));
        assert!(monster.len() > 200);
        tcp.send_raw(monster.as_bytes()).expect("oversized write");
        assert_eq!(
            tcp.read_reply().expect("proto error"),
            "ERR proto: line exceeds 64 bytes\nEND\n",
            "{transport:?}"
        );
        let stats = tcp.send("STATS;").expect("follow-up command");
        assert!(stats.starts_with("OK stats\n"), "{transport:?}: {stats}");
        server.shutdown();
    }
}

#[test]
fn event_loop_serves_concurrent_tcp_clients_byte_identically() {
    let q = cycle_query(4);
    let (service, _) = service_for(&q, 4);
    let select = select_text(&q, RankSpec::Sum, Some(2));
    let want: Vec<String> = service
        .engine()
        .expect("single-engine service")
        .prepare(q.clone(), RankSpec::Sum)
        .expect("prepare")
        .stream()
        .map(|a| encode_answer(&a))
        .collect();
    assert!(want.len() > 4, "needs several pages to interleave");

    let mut server = bind(&service, Transport::EventLoop);
    let addr = server.addr();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let select = &select;
                s.spawn(move || {
                    let mut tcp = TcpClient::connect(addr).expect("connect");
                    let mut rows = Vec::new();
                    let mut reply = tcp.send(select).expect("select");
                    loop {
                        let header = reply.lines().next().expect("header").to_string();
                        assert!(header.starts_with("OK "), "{reply}");
                        rows.extend(
                            reply
                                .lines()
                                .filter(|l| l.starts_with("ROW "))
                                .map(String::from),
                        );
                        if header.contains("done=true") {
                            return rows;
                        }
                        let cursor = header
                            .split("cursor=")
                            .nth(1)
                            .and_then(|t| t.split_whitespace().next())
                            .expect("cursor")
                            .to_string();
                        reply = tcp.send(&format!("NEXT 2 ON {cursor};")).expect("next");
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("client thread"), want);
        }
    });
    let stats = service.stats();
    assert_eq!(stats.queries, 8);
    assert_eq!(stats.open_cursors, 0, "drained cursors release slots");
    server.shutdown();
}

#[test]
fn silent_sessions_expired_cursors_are_reaped_through_the_shared_deadline_map() {
    // The PR-4 gap, regression-pinned: a session that goes SILENT
    // while holding cursors must not pin its admission slots past the
    // TTL. The shared deadline map releases them from *outside* the
    // owning session — here via the admission path of a different
    // session's SELECT.
    let q = path_query(2);
    let e = edge_rel(&fixture_edges());
    let engine = Engine::from_query_bindings(&q, vec![e.clone(), e]);
    let service = Service::with_config(
        engine,
        ServiceConfig {
            max_open_cursors: 1,
            cursor_ttl: Duration::from_millis(30),
            ..ServiceConfig::default()
        },
    );
    let select = "SELECT R1(a,b), R2(b,c) LIMIT 1;";

    // Session A holds the only admission slot... and goes silent.
    let mut silent = service.session();
    let Ok(Response::Page(page)) = silent.execute(select) else {
        panic!("A's select")
    };
    let held = page.cursor.expect("live cursor");
    assert_eq!(service.stats().open_cursors, 1);

    // While A's cursor is fresh, another session is turned away (the
    // admission sweep finds nothing expired).
    let mut other = service.session();
    assert_eq!(
        other.execute(select),
        Err(ServeError::AdmissionRejected { open: 1, max: 1 })
    );

    // Past the TTL — A still silent — admission's consult of the
    // deadline map frees A's slot and the SELECT goes through.
    std::thread::sleep(Duration::from_millis(60));
    let resp = other.execute(select).expect("slot reaped by admission");
    let Response::Page(page) = resp else { panic!() };
    assert!(page.cursor.is_some(), "B owns the freed slot");
    let stats = service.stats();
    assert_eq!(stats.cursors_expired, 1, "A's cursor was reaped");
    assert_eq!(stats.open_cursors, 1, "exactly B's cursor remains");

    // When A finally speaks, its cursor reports *expired* (for NEXT
    // and CLOSE alike) — and nothing double-releases.
    assert_eq!(
        silent.execute(&format!("NEXT 1 ON {held};")),
        Err(ServeError::CursorExpired { cursor: held })
    );
    assert_eq!(
        silent.execute(&format!("CLOSE {held};")),
        Err(ServeError::CursorExpired { cursor: held })
    );
    drop(silent);
    drop(other);
    let stats = service.stats();
    assert_eq!(stats.open_cursors, 0);
    assert_eq!(
        stats.cursors_opened,
        stats.cursors_closed + stats.cursors_expired,
        "lifecycle accounting balances: {stats:?}"
    );
}

#[test]
fn event_loop_tick_reaps_silent_connections_without_admission_pressure() {
    // No admission pressure at all: the event loop's timer tick alone
    // must sweep the deadline map while the client connection stays
    // open but silent.
    let q = path_query(2);
    let e = edge_rel(&fixture_edges());
    let engine = Engine::from_query_bindings(&q, vec![e.clone(), e]);
    let service = Service::with_config(
        engine,
        ServiceConfig {
            cursor_ttl: Duration::from_millis(50),
            ..ServiceConfig::default()
        },
    );
    let mut server = bind(&service, Transport::EventLoop);
    let mut tcp = TcpClient::connect(server.addr()).expect("connect");
    let reply = tcp
        .send("SELECT R1(a,b), R2(b,c) LIMIT 1;")
        .expect("select");
    assert!(reply.starts_with("OK cursor=0"), "{reply}");
    assert_eq!(service.stats().open_cursors, 1);

    // Stay connected, say nothing. The tick (100 ms cadence) reaps.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    loop {
        let stats = service.stats();
        if stats.open_cursors == 0 && stats.cursors_expired == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "tick never reaped: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The silent client's next command sees the typed expiry.
    let reply = tcp.send("NEXT 1 ON 0;").expect("next");
    assert_eq!(reply, "ERR cursor: cursor 0 expired\nEND\n");
    server.shutdown();
}

#[test]
fn concurrent_sessions_page_byte_identically() {
    // >= 8 clients over one shared service: every transcript must be
    // identical to the single-threaded direct-stream encoding, pages
    // interleaving freely across threads.
    let q = cycle_query(4);
    let (service, _) = service_for(&q, 4);
    let select = select_text(&q, RankSpec::Sum, Some(2));
    let want: Vec<String> = service
        .engine()
        .expect("single-engine service")
        .prepare(q.clone(), RankSpec::Sum)
        .expect("prepare")
        .stream()
        .map(|a| encode_answer(&a))
        .collect();
    assert!(want.len() > 4, "needs several pages to interleave");

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let service = &service;
                let select = &select;
                s.spawn(move || {
                    let mut client = LocalClient::new(service);
                    page_rows(&mut client, select, 2)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("client thread"), want);
        }
    });
    let stats = service.stats();
    assert_eq!(stats.queries, 8, "eight SELECTs");
    assert_eq!(stats.open_cursors, 0, "drained cursors release their slots");
    assert!(
        stats.cache.hits >= 8,
        "one prepare, everyone else hits the plan cache (got {:?})",
        stats.cache
    );
}

#[test]
fn cursor_close_and_ttl_semantics() {
    let q = path_query(2);
    let e = edge_rel(&fixture_edges());
    let engine = Engine::from_query_bindings(&q, vec![e.clone(), e]);
    let service = Service::with_config(
        engine,
        ServiceConfig {
            cursor_ttl: Duration::from_millis(15),
            ..ServiceConfig::default()
        },
    );
    let mut session = service.session();

    // LIMIT 1 on a many-answer query keeps the cursor open.
    let resp = session
        .execute("SELECT R1(a,b), R2(b,c) LIMIT 1;")
        .expect("select");
    let Response::Page(page) = resp else { panic!() };
    let id = page.cursor.expect("live cursor");
    assert_eq!(session.open_cursors(), 1);

    // CLOSE releases it; a second CLOSE (and any NEXT) is typed.
    assert_eq!(
        session.execute(&format!("CLOSE {id};")),
        Ok(Response::Closed { cursor: id })
    );
    assert_eq!(session.open_cursors(), 0);
    assert_eq!(
        session.execute(&format!("CLOSE {id};")),
        Err(ServeError::UnknownCursor { cursor: id })
    );
    assert_eq!(
        session.execute(&format!("NEXT 1 ON {id};")),
        Err(ServeError::UnknownCursor { cursor: id })
    );

    // A cursor that idles past the TTL is reaped, and NEXT on it says
    // *expired*, not unknown.
    let resp = session
        .execute("SELECT R1(a,b), R2(b,c) LIMIT 1;")
        .expect("select");
    let Response::Page(page) = resp else { panic!() };
    let id = page.cursor.expect("live cursor");
    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(
        session.execute(&format!("NEXT 1 ON {id};")),
        Err(ServeError::CursorExpired { cursor: id })
    );
    assert_eq!(
        session.execute(&format!("CLOSE {id};")),
        Err(ServeError::CursorExpired { cursor: id }),
        "CLOSE distinguishes expired from unknown, like NEXT"
    );
    assert_eq!(service.stats().cursors_expired, 1);
    assert_eq!(service.stats().open_cursors, 0, "reaping frees the slot");

    // The wire rendering of the lifecycle errors is stable.
    let mut client = LocalClient::new(&service);
    assert_eq!(
        client.send("NEXT 1 ON 7;"),
        "ERR cursor: unknown cursor 7\nEND\n"
    );
}

#[test]
fn admission_control_rejects_typed_and_recovers() {
    let q = path_query(2);
    let e = edge_rel(&fixture_edges());
    let engine = Engine::from_query_bindings(&q, vec![e.clone(), e]);
    let service = Service::with_config(
        engine,
        ServiceConfig {
            max_open_cursors: 2,
            ..ServiceConfig::default()
        },
    );
    let select = "SELECT R1(a,b), R2(b,c) LIMIT 1;";

    // Two sessions each hold a live cursor: the service is full.
    let mut s1 = service.session();
    let mut s2 = service.session();
    assert!(matches!(s1.execute(select), Ok(Response::Page(_))));
    assert!(matches!(s2.execute(select), Ok(Response::Page(_))));
    let mut s3 = service.session();
    assert_eq!(
        s3.execute(select),
        Err(ServeError::AdmissionRejected { open: 2, max: 2 })
    );
    assert_eq!(service.stats().admission_rejected, 1);

    // Closing one stream frees a slot...
    assert!(matches!(
        s1.execute("CLOSE 0;"),
        Ok(Response::Closed { .. })
    ));
    assert!(matches!(s3.execute(select), Ok(Response::Page(_))));

    // ...and dropping a whole session releases everything it held.
    drop(s2);
    drop(s3);
    assert_eq!(service.stats().open_cursors, 0);

    // Draining a stream to exhaustion also releases its slot without
    // an explicit CLOSE.
    let mut s4 = service.session();
    let Ok(Response::Page(page)) = s4.execute(select) else {
        panic!()
    };
    let id = page.cursor.expect("live");
    let mut done = false;
    for _ in 0..100 {
        let Ok(Response::Page(p)) = s4.execute(&format!("NEXT 50 ON {id};")) else {
            panic!()
        };
        if p.done {
            done = true;
            break;
        }
    }
    assert!(done, "stream must drain");
    assert_eq!(service.stats().open_cursors, 0);
    assert_eq!(s4.open_cursors(), 0);
}

#[test]
fn exact_page_boundary_reports_done_and_holds_no_cursor() {
    // A result set that ends exactly at the page boundary must report
    // done=true with no cursor — a one-shot top-k client that never
    // sends NEXT/CLOSE must not pin an admission slot.
    let q = QueryBuilder::new().atom("E", &["a", "b"]).build();
    let rows = fixture_edges();
    let engine = Engine::from_query_bindings(&q, vec![edge_rel(&rows)]);
    let service = Service::new(engine);
    let mut session = service.session();
    let resp = session
        .execute(&format!("SELECT E(a,b) LIMIT {};", rows.len()))
        .expect("select");
    let Response::Page(page) = resp else { panic!() };
    assert_eq!(page.answers.len(), rows.len());
    assert!(page.done, "exactly page-sized result is proven exhausted");
    assert_eq!(page.cursor, None);
    assert_eq!(session.open_cursors(), 0);
    assert_eq!(service.stats().open_cursors, 0, "no slot pinned");

    // One short of the full set: a cursor is registered, and the next
    // page carries the single remaining answer with done=true.
    let resp = session
        .execute(&format!("SELECT E(a,b) LIMIT {};", rows.len() - 1))
        .expect("select");
    let Response::Page(page) = resp else { panic!() };
    let id = page.cursor.expect("one answer remains");
    assert!(!page.done);
    let Ok(Response::Page(last)) = session.execute(&format!("NEXT 5 ON {id};")) else {
        panic!()
    };
    assert_eq!(last.answers.len(), 1);
    assert!(last.done);
    assert_eq!(service.stats().open_cursors, 0);
}

#[test]
fn stats_report_real_serving_numbers() {
    let q = triangle_query();
    let (service, _) = service_for(&q, 3);
    let mut client = LocalClient::new(&service);
    let select = select_text(&q, RankSpec::Sum, Some(2));
    let _ = client.send(&select);
    let _ = client.send(&select); // second: plan-cache hit
    let stats = service.stats();
    assert_eq!(stats.queries, 2);
    assert!(stats.answers_served >= 2);
    assert_eq!(stats.cache.misses, 1, "one cold prepare");
    assert!(stats.cache.hits >= 1, "the repeat hits the plan cache");
    assert!(stats.ttf_max_us >= stats.ttf_min_us);

    // The wire rendering carries the same numbers.
    let text = client.send("STATS;");
    assert!(text.contains("INFO queries=2"), "{text}");
    assert!(text.contains("INFO plan_cache_misses=1"), "{text}");
    assert!(text.starts_with("OK stats\n"), "{text}");

    // EXPLAIN executes nothing but renders the plan.
    let explain = client.send(&format!("EXPLAIN {select}"));
    assert!(explain.contains("route = triangle"), "{explain}");
    assert_eq!(service.stats().queries, 2, "EXPLAIN is not a query");
}

#[test]
fn explain_analyze_and_trace_round_trip_on_both_transports() {
    // The observability commands through real sockets, once per accept
    // architecture: EXPLAIN ANALYZE executes (but holds no cursor) and
    // reports the stage taxonomy; TRACE replays the ring; TRACE SLOW
    // is empty under the default 250 ms threshold. Masking the
    // `_us=<digits>` timing values, the analyze reply must be
    // byte-identical across both transports.
    let mask = |reply: &str| -> String {
        reply
            .split(' ')
            .map(|tok| match tok.find("_us=") {
                Some(i) if tok.as_bytes().get(i + 4).is_some_and(u8::is_ascii_digit) => {
                    let tail = &tok[i + 4..];
                    let end = tail
                        .find(|c: char| !c.is_ascii_digit())
                        .unwrap_or(tail.len());
                    format!("{}#{}", &tok[..i + 4], &tail[end..])
                }
                _ => tok.to_string(),
            })
            .collect::<Vec<_>>()
            .join(" ")
    };
    let q = path_query(3);
    let select = select_text(&q, RankSpec::Sum, Some(3));
    let mut masked_replies = Vec::new();
    for transport in TRANSPORTS {
        let (service, _) = service_for(&q, 3);
        let mut server = bind(&service, transport);
        let mut tcp = TcpClient::connect(server.addr()).expect("connect");

        let analyze = tcp
            .send(&format!("EXPLAIN ANALYZE {select}"))
            .expect("analyze round-trip");
        assert!(
            analyze.starts_with("OK analyze\n"),
            "{transport:?}: {analyze}"
        );
        for field in [
            "INFO route=acyclic",
            "INFO rank=sum",
            "INFO cache=miss",
            "INFO stage.parse_us=",
            "INFO stage.prepare_us=",
            "INFO stage.pull_us=",
            "INFO stage_sum_us=",
            "INFO wall_us=",
            "INFO rows=3",
        ] {
            assert!(
                analyze.contains(field),
                "{transport:?}: analyze reply missing `{field}`:\n{analyze}"
            );
        }
        assert_eq!(
            service.stats().open_cursors,
            0,
            "{transport:?}: EXPLAIN ANALYZE must hold no cursor"
        );
        masked_replies.push(mask(&analyze));

        // A real SELECT publishes a trace too; TRACE 2 replays both,
        // newest first.
        let first = tcp.send(&select).expect("select round-trip");
        assert!(first.starts_with("OK cursor="), "{transport:?}: {first}");
        let traces = tcp.send("TRACE 2;").expect("trace round-trip");
        assert!(
            traces.starts_with("OK traces count=2 source=ring\n"),
            "{transport:?}: {traces}"
        );
        assert_eq!(
            traces
                .lines()
                .filter(|l| l.starts_with("INFO trace "))
                .count(),
            2,
            "{transport:?}: {traces}"
        );
        assert!(
            traces.contains("route=acyclic") && traces.contains("rank=sum"),
            "{transport:?}: {traces}"
        );

        // Nothing here is anywhere near the default slow threshold.
        let slow = tcp.send("TRACE SLOW;").expect("trace slow round-trip");
        assert_eq!(
            slow, "OK traces count=0 source=slow\nEND\n",
            "{transport:?}"
        );
        server.shutdown();
    }
    assert_eq!(
        masked_replies[0], masked_replies[1],
        "EXPLAIN ANALYZE must be transport-identical modulo timings"
    );
}

#[test]
fn sharded_service_pages_byte_identically_to_single_service() {
    // The wire-level sharded contract: a Service over a ShardedEngine
    // must page the exact bytes a single-engine Service pages (modulo
    // tie canonicalization, which the merge pins to value order) —
    // and EXPLAIN must surface the shard fan-out.
    for (route, q, m) in shapes() {
        let e = edge_rel(&fixture_edges());
        let rels: Vec<Relation> = (0..m).map(|_| e.clone()).collect();
        let sharded_engine =
            ShardedEngine::try_from_query_bindings(&q, rels.clone(), 3).expect("sharded build");
        let sharded_service = Service::sharded(sharded_engine);
        for rank in RankSpec::ALL {
            let select = select_text(&q, rank, Some(3));
            let mut client = LocalClient::new(&sharded_service);
            let got_rows = page_rows(&mut client, &select, 3);
            // Baseline: the single engine's canonical-tie stream
            // through the same encoder.
            let single = Engine::from_query_bindings(&q, rels.clone());
            let want_rows: Vec<String> = single
                .prepare(q.clone(), rank)
                .expect("single prepare")
                .stream()
                .canonical_ties()
                .map(|a| encode_answer(&a))
                .collect();
            assert!(
                !want_rows.is_empty(),
                "{route} × {rank}: fixture has answers"
            );
            assert_eq!(
                got_rows, want_rows,
                "{route} × {rank}: sharded pages == single-engine canonical stream"
            );
        }
        // EXPLAIN through the sharded backend reports the fan-out.
        let mut client = LocalClient::new(&sharded_service);
        let explain = client.send(&format!(
            "EXPLAIN {}",
            select_text(&q, RankSpec::Sum, Some(1))
        ));
        assert!(
            explain.contains("shard fan-out: 3 shard(s)"),
            "{route}: EXPLAIN must show the fan-out, got:\n{explain}"
        );
        // STATS reports the shard count and aggregates across shards.
        let stats = client.send("STATS;");
        assert!(
            stats.contains("INFO shards=3"),
            "{route}: STATS must carry the shard count, got:\n{stats}"
        );
    }
}
